#include "analysis/xval.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace cord
{

const char *
escapeKindName(EscapeKind k)
{
    switch (k) {
      case EscapeKind::UnobservedWord:
        return "unobserved-word";
      case EscapeKind::SingleThreadInBaseline:
        return "single-thread-in-baseline";
      case EscapeKind::OrderedInBaseline:
        return "ordered-in-baseline";
    }
    return "?";
}

namespace
{

/**
 * Classify every missed word from what the baseline trace contained
 * for it plus the first explored schedule that manifested it.  One
 * linear pass over the baseline; per-word state only for the (few)
 * missed words.
 */
std::vector<XvalEscape>
classifyEscapes(const XvalResult &r, const ScheduleRun &base,
                const std::vector<ScheduleRun> &runs)
{
    struct BaseStats
    {
        std::uint64_t accesses = 0;
        std::uint64_t writes = 0;
        std::uint64_t threadMask = 0; // tids < 64; overflow saturates
        unsigned threads = 0;
    };
    std::map<Addr, BaseStats> stats;
    for (Addr w : r.missedWords)
        stats.emplace(w, BaseStats{});

    if (base.trace) {
        for (const MemEvent &ev : base.trace->events) {
            auto it = stats.find(ev.addr);
            if (it == stats.end())
                continue;
            BaseStats &s = it->second;
            ++s.accesses;
            if (ev.isWrite())
                ++s.writes;
            if (ev.tid < 64) {
                const std::uint64_t bit = std::uint64_t(1) << ev.tid;
                if (!(s.threadMask & bit)) {
                    s.threadMask |= bit;
                    ++s.threads;
                }
            } else {
                ++s.threads; // conservative for huge thread counts
            }
        }
    }

    std::vector<XvalEscape> escapes;
    escapes.reserve(r.missedWords.size());
    for (Addr w : r.missedWords) {
        const BaseStats &s = stats.at(w);
        XvalEscape e;
        e.word = w;
        e.baselineAccesses = s.accesses;
        e.baselineWrites = s.writes;
        e.baselineThreads = s.threads;
        if (s.accesses == 0)
            e.kind = EscapeKind::UnobservedWord;
        else if (s.threads <= 1)
            e.kind = EscapeKind::SingleThreadInBaseline;
        else
            e.kind = EscapeKind::OrderedInBaseline;
        for (const ScheduleRun &run : runs) {
            if (!run.completed)
                continue;
            if (std::find(run.idealRacyWords.begin(),
                          run.idealRacyWords.end(),
                          w) != run.idealRacyWords.end()) {
                e.firstSchedule = run.index;
                break;
            }
        }
        escapes.push_back(e);
    }
    return escapes;
}

} // namespace

XvalResult
runXval(const XvalSpec &spec)
{
    ExploreSpec es = spec.explore;
    es.recordTrace = true;
    const ExploreResult ex = exploreSchedules(es);

    XvalResult r;
    r.schedules = static_cast<unsigned>(ex.runs.size());
    r.completed = ex.completedRuns;
    for (const ScheduleRun &run : ex.runs) {
        if (!run.completed)
            continue;
        r.manifestedWords.insert(run.idealRacyWords.begin(),
                                 run.idealRacyWords.end());
    }

    const ScheduleRun &base = ex.runs.front();
    r.baselineCompleted = base.completed && base.trace != nullptr;
    if (r.baselineCompleted) {
        const PredictiveAnalysis pred = PredictiveAnalysis::analyze(
            *base.trace, es.params.numThreads, spec.predict);
        r.predictedPairs = pred.pairs();
        r.predictedWords = pred.racyWords();
    }

    for (Addr w : r.manifestedWords) {
        if (!r.predictedWords.count(w))
            r.missedWords.push_back(w);
    }
    r.escapes = classifyEscapes(r, base, ex.runs);
    return r;
}

void
reportXval(const XvalResult &r, LintReport &report, bool failOnEscape)
{
    report.markChecked("xval.superset");
    report.setMetric("xval.schedules", static_cast<double>(r.schedules));
    report.setMetric("xval.completed", static_cast<double>(r.completed));
    report.setMetric("xval.predictedPairs",
                     static_cast<double>(r.predictedPairs));
    report.setMetric("xval.predictedWords",
                     static_cast<double>(r.predictedWords.size()));
    report.setMetric("xval.manifestedWords",
                     static_cast<double>(r.manifestedWords.size()));
    report.setMetric("xval.missedWords",
                     static_cast<double>(r.missedWords.size()));

    std::size_t unobserved = 0, singleThread = 0, ordered = 0;
    for (const XvalEscape &e : r.escapes) {
        switch (e.kind) {
          case EscapeKind::UnobservedWord:
            ++unobserved;
            break;
          case EscapeKind::SingleThreadInBaseline:
            ++singleThread;
            break;
          case EscapeKind::OrderedInBaseline:
            ++ordered;
            break;
        }
    }
    report.setMetric("xval.escape.unobserved",
                     static_cast<double>(unobserved));
    report.setMetric("xval.escape.singleThread",
                     static_cast<double>(singleThread));
    report.setMetric("xval.escape.ordered",
                     static_cast<double>(ordered));

    if (!r.baselineCompleted) {
        report.error("xval.superset",
                     "baseline schedule did not complete; nothing to "
                     "predict from");
        return;
    }

    constexpr std::size_t kMaxListed = 16;
    std::size_t listed = 0;
    for (const XvalEscape &e : r.escapes) {
        if (listed++ == kMaxListed) {
            std::ostringstream os;
            os << "... and " << (r.escapes.size() - kMaxListed)
               << " more escaped words";
            if (failOnEscape)
                report.error("xval.escape", os.str());
            else
                report.warning("xval.escape", os.str());
            break;
        }
        std::ostringstream os;
        os << "word 0x" << std::hex << e.word << std::dec
           << " escaped the baseline-trace prediction: kind="
           << escapeKindName(e.kind) << ", first manifested in schedule "
           << e.firstSchedule << "; baseline witness: "
           << e.baselineAccesses << " accesses (" << e.baselineWrites
           << " writes) from " << e.baselineThreads << " thread(s)";
        if (failOnEscape)
            report.error("xval.escape", os.str());
        else
            report.warning("xval.escape", os.str());
    }
    if (r.missedWords.empty()) {
        std::ostringstream os;
        os << "predicted words (" << r.predictedWords.size()
           << ") cover every manifested racy word ("
           << r.manifestedWords.size() << ") across " << r.completed
           << "/" << r.schedules << " completed schedules";
        report.info("xval.superset", os.str());
    }
}

} // namespace cord

/**
 * @file
 * cordlint -- offline static analysis of CORD run artifacts.
 *
 * Consumes the serialized order log and/or access trace a run left
 * behind (cordsim --save-log / --save-trace) and runs the full check
 * suite
 * without re-running the simulator: log well-formedness and replay
 * feasibility, the CORD-vs-Ideal false-negative coverage audit, and
 * the no-false-positive proof.  See docs/ANALYSIS.md.
 *
 * Usage:
 *   cordlint [options]
 *     --log FILE      wire-format order log (8 bytes per entry)
 *     --trace FILE    access trace of the same run
 *     --threads N     thread count (default: derived from the inputs)
 *     --d N           CORD margin D for the offline audit (default 16)
 *     --no-audit      skip the (more expensive) coverage audit
 *     --json          emit the report as JSON instead of text
 *     --strict        exit nonzero on warnings, not just errors
 *
 * Exit status: 0 = clean, 1 = findings, 2 = usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "analysis/lint.h"
#include "cord/log_codec.h"
#include "harness/trace.h"

using namespace cord;

namespace
{

struct Options
{
    std::string logPath;
    std::string tracePath;
    unsigned threads = 0;
    std::uint32_t d = 16;
    bool audit = true;
    bool json = false;
    bool strict = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--log FILE] [--trace FILE] [--threads N]"
                 " [--d N]\n"
                 "       [--no-audit] [--json] [--strict]\n"
                 "at least one of --log / --trace is required\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (a == "--log") {
            opt.logPath = next();
        } else if (a == "--trace") {
            opt.tracePath = next();
        } else if (a == "--threads") {
            opt.threads = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--d") {
            opt.d = static_cast<std::uint32_t>(std::atoi(next()));
        } else if (a == "--no-audit") {
            opt.audit = false;
        } else if (a == "--json") {
            opt.json = true;
        } else if (a == "--strict") {
            opt.strict = true;
        } else {
            usage(argv[0]);
        }
    }
    if (opt.logPath.empty() && opt.tracePath.empty())
        usage(argv[0]);
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    std::vector<std::uint8_t> logBytes;
    std::optional<DecodedTrace> trace;
    if (!opt.tracePath.empty())
        trace = loadTrace(opt.tracePath);
    if (!opt.logPath.empty())
        logBytes = loadLogBytes(opt.logPath);

    LintInput in;
    if (!opt.logPath.empty())
        in.wireLog = &logBytes;
    if (trace)
        in.trace = &*trace;
    in.numThreads = opt.threads;
    in.cordConfig.d = opt.d;
    in.audit = opt.audit;

    const LintReport report = runLint(in);
    const std::string rendered =
        opt.json ? report.renderJson() : report.renderText();
    std::fputs(rendered.c_str(), stdout);

    if (report.errors() > 0)
        return 1;
    if (opt.strict && report.warnings() > 0)
        return 1;
    return 0;
}

#include "cpu/simulation.h"

#include <algorithm>

#include "obs/tracer.h"
#include "sim/logging.h"

namespace cord
{

Simulation::Simulation(const MachineConfig &cfg, unsigned numThreads)
    : cfg_(cfg), mem_(cfg)
{
    cord_assert(numThreads > 0, "need at least one thread");
    cores_.resize(cfg_.numCores);
    threads_.reserve(numThreads);
    for (unsigned i = 0; i < numThreads; ++i) {
        threads_.push_back(std::make_unique<Thread>());
        Thread &t = *threads_.back();
        t.tid = static_cast<ThreadId>(i);
        t.core = static_cast<CoreId>(i % cfg_.numCores);
        t.nextMigration = cfg_.migrationPeriodInstrs;
        cores_[t.core].threads.push_back(i);
    }
}

void
Simulation::moveThread(Thread &t, CoreId newCore)
{
    cord_assert(newCore < cores_.size(), "bad migration target");
    auto &from = cores_[t.core].threads;
    for (std::size_t i = 0; i < from.size(); ++i) {
        if (from[i] == t.tid) {
            from.erase(from.begin() + static_cast<long>(i));
            break;
        }
    }
    cores_[t.core].rr = 0;
    t.core = newCore;
    cores_[newCore].threads.push_back(t.tid);
}

Simulation::~Simulation() = default;

void
Simulation::spawn(ThreadId tid, Task<void> body)
{
    cord_assert(tid < threads_.size(), "spawn: unknown thread ", tid);
    Thread &t = *threads_[tid];
    cord_assert(!t.spawned, "thread ", tid, " spawned twice");
    auto h = body.releaseHandle();
    t.drv.bind(h, &h.promise());
    t.spawned = true;
}

void
Simulation::addDetector(Detector *d)
{
    cord_assert(d != nullptr, "null detector");
    detectors_.push_back(d);
}

std::uint64_t
Simulation::instrCount(ThreadId tid) const
{
    cord_assert(tid < threads_.size(), "unknown thread ", tid);
    return threads_[tid]->instrs;
}

std::uint64_t
Simulation::readChecksum(ThreadId tid) const
{
    cord_assert(tid < threads_.size(), "unknown thread ", tid);
    return threads_[tid]->readChecksum;
}

void
Simulation::foldChecksum(Thread &t, Addr addr, std::uint64_t value)
{
    // FNV-1a over (addr, value) pairs in program order.
    auto mix = [&](std::uint64_t x) {
        t.readChecksum ^= x;
        t.readChecksum *= 0x100000001b3ULL;
    };
    mix(addr);
    mix(value);
}

void
Simulation::scheduleCore(CoreId c)
{
    Core &core = cores_[c];
    if (core.eventScheduled)
        return;
    core.eventScheduled = true;
    events_.schedule(events_.now(), [this, c] { coreStep(c); },
                     EventQueue::kPriCore);
}

void
Simulation::coreStep(CoreId c)
{
    if (sched_ != nullptr) {
        coreStepPolicy(c);
        return;
    }
    Core &core = cores_[c];
    core.eventScheduled = false;
    const std::size_t n = core.threads.size();
    for (std::size_t probe = 0; probe < n; ++probe) {
        Thread &t = *threads_[core.threads[core.rr]];
        // Compare-and-wrap instead of % n: this runs once per core
        // wake-up and the hardware divide was visible in profiles.
        core.rr = (core.rr + 1 < n) ? core.rr + 1 : 0;
        if (t.finished || t.waiting || t.blocked || !t.spawned)
            continue;
        if (runThread(t))
            return; // one in-flight operation per (blocking) core
    }
}

void
Simulation::coreStepPolicy(CoreId c)
{
    Core &core = cores_[c];
    core.eventScheduled = false;
    // Every iteration either consumes the core slot (an operation goes
    // in flight) or retires a thread from this core's runnable set --
    // runThread returns false only when the thread finished or
    // migrated away -- so the loop is bounded by the threads pinned
    // here at entry.  A full rescan after a false return (instead of
    // the default path's shrinking probe window) guarantees a runnable
    // thread is never stranded on an otherwise idle core, which a
    // policy picking beyond the first candidate could otherwise cause.
    std::size_t guard = core.threads.size();
    for (;;) {
        const std::size_t n = core.threads.size();
        if (n == 0)
            return;
        if (core.rr >= n)
            core.rr = 0; // a migration shrank the list under the cursor
        // Runnable candidates in the cursor's probe order.  The policy
        // is queried only at contended decisions (>= 2 candidates); a
        // lone candidate issues unconditionally, so quiet phases
        // produce no schedule-log entries.
        candPos_.clear();
        candTids_.clear();
        for (std::size_t probe = 0; probe < n; ++probe) {
            const std::size_t pos = (core.rr + probe) % n;
            const Thread &t = *threads_[core.threads[pos]];
            if (t.finished || t.waiting || t.blocked || !t.spawned)
                continue;
            candPos_.push_back(pos);
            candTids_.push_back(t.tid);
        }
        if (candPos_.empty())
            return;
        std::size_t choice = 0;
        if (candTids_.size() > 1) {
            choice = sched_->pickThread(c, candTids_);
            if (choice >= candTids_.size())
                choice = 0;
            if (schedRec_)
                schedRec_->push(SchedPoint::Pick, choice);
            if (EventTracer *tr = EventTracer::active())
                tr->emit(TraceEventKind::SchedDecision, events_.now(),
                         candTids_[choice], c,
                         static_cast<std::uint64_t>(SchedPoint::Pick),
                         choice);
        }
        const std::size_t pos = candPos_[choice];
        Thread &t = *threads_[core.threads[pos]];
        // Advance the cursor past the chosen slot first, exactly like
        // the default path, so a migration's cursor reset inside
        // runThread still wins.
        core.rr = static_cast<unsigned>((pos + 1) % n);
        if (runThread(t))
            return; // one in-flight operation per (blocking) core
        if (guard-- == 0)
            return; // defensive bound; unreachable in practice
    }
}

bool
Simulation::runThread(Thread &t)
{
    // Scheduler-driven migration: re-pin the thread periodically.
    if (cfg_.migrationPeriodInstrs != 0 &&
        t.instrs >= t.nextMigration && cfg_.numCores > 1) {
        t.nextMigration = t.instrs + cfg_.migrationPeriodInstrs;
        const CoreId target =
            static_cast<CoreId>((t.core + 1) % cfg_.numCores);
        moveThread(t, target);
        scheduleCore(target);
        return false; // this core's slot is free again
    }
    for (;;) {
        if (t.computeRemaining > 0) {
            std::uint64_t chunk = t.computeRemaining;
            if (gate_)
                chunk = gate_->allowance(t.tid, chunk);
            if (chunk == 0) {
                // Gate-blocked: retry after a short delay.
                t.blocked = true;
                events_.scheduleIn(kGateRetryTicks, [this, &t] {
                    t.blocked = false;
                    scheduleCore(t.core);
                });
                return true;
            }
            t.instrs += chunk;
            if (gate_)
                gate_->onRetired(t.tid, chunk);
            t.computeRemaining -= static_cast<std::uint32_t>(chunk);
            const Tick cost = std::max<Tick>(
                1, (chunk + cfg_.issueWidth - 1) / cfg_.issueWidth);
            t.waiting = true;
            events_.scheduleIn(cost, [this, &t] {
                t.waiting = false;
                if (t.computeRemaining == 0)
                    t.drv.complete(OpResult{0, false, events_.now()});
                scheduleCore(t.core);
            }, EventQueue::kPriResponse);
            return true;
        }

        if (!t.drv.hasPending()) {
            if (t.drv.finished()) {
                finishThread(t);
                return false; // slot free for another thread
            }
            t.drv.resume();
            continue;
        }

        const OpRequest &op = t.drv.pending();
        switch (op.type) {
          case OpType::Compute:
            if (op.count == 0) {
                t.drv.complete(OpResult{0, false, events_.now()});
                continue;
            }
            t.computeRemaining = op.count * cfg_.computeScale;
            continue;

          case OpType::Yield:
            t.waiting = true;
            events_.scheduleIn(1, [this, &t] {
                t.waiting = false;
                t.drv.complete(OpResult{0, false, events_.now()});
                scheduleCore(t.core);
            }, EventQueue::kPriResponse);
            return true;

          case OpType::Load:
          case OpType::Store:
          case OpType::Rmw:
            if (gate_ && gate_->allowance(t.tid, 1) == 0) {
                t.blocked = true;
                events_.scheduleIn(kGateRetryTicks, [this, &t] {
                    t.blocked = false;
                    scheduleCore(t.core);
                });
                return true;
            }
            issueMemOp(t);
            return true;
        }
    }
}

void
Simulation::issueMemOp(Thread &t)
{
    const OpRequest op = t.drv.pending();
    t.instrs += 1;
    if (gate_)
        gate_->onRetired(t.tid, 1);

    // An RMW needs ownership like a store; a failed CAS is modeled with
    // store timing too (the line is fetched exclusively either way).
    const bool writeForTiming = op.type != OpType::Load;
    Tick completion;
    if (gate_) {
        // Replay: the gate defines the ordering, so operations must
        // commit in issue order -- variable memory latencies would let
        // a later-issued read commit before an earlier-issued write.
        completion = events_.now() + 1;
    } else {
        {
            ProfWallTimer pt(ProfDomain::MemService);
            completion =
                mem_.access(t.core, op.addr, writeForTiming,
                            events_.now())
                    .completion;
        }
        if (Profiler *p = Profiler::active())
            p->addCycles(ProfDomain::MemService,
                         completion - events_.now());
        if (sched_) {
            const Tick extra = sched_->memDelay(t.tid, op.addr, op.sync);
            if (schedRec_)
                schedRec_->push(SchedPoint::Delay, extra);
            completion += extra;
            if (extra > 0) {
                if (EventTracer *tr = EventTracer::active())
                    tr->emit(TraceEventKind::SchedDecision,
                             events_.now(), t.tid, t.core,
                             static_cast<std::uint64_t>(
                                 SchedPoint::Delay),
                             extra);
            }
        }
    }

    t.waiting = true;
    events_.schedule(completion, [this, &t, op] {
        t.waiting = false;
        commitMemOp(t, op);
        scheduleCore(t.core);
    }, EventQueue::kPriResponse);
}

void
Simulation::publish(Thread &t, Addr addr, AccessKind kind,
                    std::uint64_t value)
{
    MemEvent ev;
    ev.tick = events_.now();
    ev.tid = t.tid;
    ev.core = t.core;
    ev.addr = wordAddr(addr);
    ev.kind = kind;
    ev.instrCount = t.instrs;
    ev.value = value;
    ++committed_;
    // Interleaving signature: FNV-1a over (tid, kind, word address) in
    // commit order.  Values are excluded so the signature fingerprints
    // the ordering alone, not the data it produced.
    auto mix = [this](std::uint64_t x) {
        sig_ ^= x;
        sig_ *= 0x100000001b3ULL;
    };
    mix(ev.tid);
    mix(static_cast<std::uint64_t>(kind));
    mix(ev.addr);
    for (Detector *d : inlineDetectors_)
        d->onAccess(ev);
    for (auto &lane : lanes_)
        lane->onAccess(ev);
}

void
Simulation::commitMemOp(Thread &t, const OpRequest &op)
{
    OpResult res;
    switch (op.type) {
      case OpType::Load: {
        res.value = values_.load(op.addr);
        res.success = true;
        foldChecksum(t, op.addr, res.value);
        publish(t, op.addr,
                op.sync ? AccessKind::SyncRead : AccessKind::DataRead,
                res.value);
        break;
      }
      case OpType::Store: {
        values_.store(op.addr, op.value);
        publish(t, op.addr,
                op.sync ? AccessKind::SyncWrite : AccessKind::DataWrite,
                op.value);
        break;
      }
      case OpType::Rmw: {
        auto [old, ok] = values_.compareAndSwap(op.addr, op.expected,
                                                op.value);
        res.value = old;
        res.success = ok;
        foldChecksum(t, op.addr, old);
        publish(t, op.addr, AccessKind::SyncRead, old);
        if (ok)
            publish(t, op.addr, AccessKind::SyncWrite, op.value);
        break;
      }
      default:
        cord_panic("commitMemOp on non-memory op");
    }
    res.now = events_.now();
    t.drv.complete(res);
}

void
Simulation::finishThread(Thread &t)
{
    cord_assert(!t.finished, "thread finished twice");
    t.finished = true;
    ++finishedThreads_;
    for (Detector *d : inlineDetectors_)
        d->onThreadEnd(t.tid, t.instrs);
    for (auto &lane : lanes_)
        lane->onThreadEnd(t.tid, t.instrs);
    if (allFinished()) {
        finishTick_ = events_.now();
        // Lane detectors are pure observers -- their finish() cannot
        // touch the timing model -- so deferring it to settleLanes()
        // (after the dispatch loop, on this thread) is byte-equivalent
        // to the sequential in-loop call.
        for (Detector *d : inlineDetectors_)
            d->finish();
    }
}

void
Simulation::partitionDetectors()
{
    inlineDetectors_ = detectors_;
    lanes_.clear();
    pdes_ = PdesTelemetry{};
    pdes_.shardsRequested = simShards_;
    // Detectors emit trace events into the thread-local EventTracer;
    // off-thread replay would silently drop them, so tracing forces the
    // sequential path (cordsim additionally rejects the flag combo).
    if (simShards_ <= 1 || EventTracer::active() != nullptr)
        return;
    std::vector<Detector *> pure;
    std::vector<Detector *> inl;
    for (Detector *d : detectors_)
        (d->pureObserver() ? pure : inl).push_back(d);
    const unsigned laneCount = static_cast<unsigned>(
        std::min<std::size_t>(simShards_ - 1, pure.size()));
    if (laneCount == 0)
        return;
    // Round-robin pure observers across lanes: deterministic grouping,
    // and the heaviest detectors (listed first by the harness) land on
    // distinct workers.
    std::vector<std::vector<Detector *>> groups(laneCount);
    for (std::size_t i = 0; i < pure.size(); ++i)
        groups[i % laneCount].push_back(pure[i]);
    for (auto &g : groups)
        lanes_.push_back(std::make_unique<DetectorLane>(std::move(g)));
    inlineDetectors_ = std::move(inl);
    pdes_.lanes = laneCount;
}

void
Simulation::settleLanes(bool runFinish)
{
    if (lanes_.empty()) {
        inlineDetectors_.clear();
        return;
    }
    for (auto &lane : lanes_) {
        pdes_.joinNs += lane->join();
        const DetectorLane::Stats &s = lane->stats();
        pdes_.laneRecords += s.records;
        pdes_.laneBatches += s.batches;
        pdes_.producerWaitNs += s.producerWaitNs;
        pdes_.laneIdleNs += s.workerIdleNs;
        if (runFinish)
            for (Detector *d : lane->detectors())
                d->finish();
    }
    // Producer-side stall + end-of-run join is the window-sync cost of
    // this run; wall-only, so deterministic profile.* stats stay
    // byte-identical to the sequential path.
    if (Profiler *p = Profiler::active())
        p->addWallBlock(ProfDomain::PdesBarrier,
                        pdes_.producerWaitNs + pdes_.joinNs,
                        static_cast<std::uint64_t>(lanes_.size()));
    lanes_.clear();
    inlineDetectors_.clear();
}

bool
Simulation::run(Tick maxTicks)
{
    for (unsigned i = 0; i < threads_.size(); ++i)
        cord_assert(threads_[i]->spawned, "thread ", i, " never spawned");
    partitionDetectors();
    if (sched_)
        sched_->begin(static_cast<unsigned>(threads_.size()),
                      static_cast<unsigned>(cores_.size()));
    for (unsigned c = 0; c < cores_.size(); ++c) {
        if (!cores_[c].threads.empty())
            scheduleCore(static_cast<CoreId>(c));
    }
    // Kernel-dispatch wall attribution: one timed block around the
    // whole dispatch loop (exact, two clock reads total) instead of a
    // per-step sampled timer -- per-event instrumentation is the one
    // place where even a sampled hook costs whole percents.
    Profiler *const prof = Profiler::active();
    const auto dispatchStart = std::chrono::steady_clock::now();
    std::uint64_t steps = 0;
    while (!allFinished()) {
        if (events_.empty())
            cord_panic("event queue drained with ", finishedThreads_,
                       " of ", threads_.size(), " threads finished");
        if (events_.now() > maxTicks) {
            // Watchdog: mirror the sequential path (no Detector::
            // finish()), but drain the lanes so detector state is
            // consistent with everything published before the abort.
            settleLanes(/*runFinish=*/false);
            return false;
        }
        events_.step();
        ++steps;
    }
    if (prof)
        prof->addWallBlock(
            ProfDomain::KernelDispatch,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - dispatchStart)
                    .count()),
            steps);
    settleLanes(/*runFinish=*/true);
    return true;
}

} // namespace cord

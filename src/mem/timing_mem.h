/**
 * @file
 * Timing model of the CMP's private-cache hierarchy with bus-based MESI
 * snooping coherence.
 *
 * This model answers one question for each memory operation: at which
 * tick does it complete?  Data values are kept functionally elsewhere
 * (runtime/value_store.h); the caches here track only tags and MESI
 * state.  Bus contention is modeled analytically through BusChannel
 * (mem/bus.h), which is the channel through which CORD's race-check and
 * memory-timestamp traffic perturbs performance (paper Section 4.1).
 */

#ifndef CORD_MEM_TIMING_MEM_H
#define CORD_MEM_TIMING_MEM_H

#include <cstdint>
#include <vector>

#include "mem/bus.h"
#include "mem/cache_array.h"
#include "mem/machine_config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace cord
{

/** MESI coherence states. */
enum class Mesi : std::uint8_t { Invalid, Shared, Exclusive, Modified };

/** How a timing access was satisfied (for stats and tests). */
enum class ServiceSource : std::uint8_t
{
    L1Hit,
    L2Hit,
    CacheToCache,
    Memory,
};

/** Result of a timing access. */
struct TimingResult
{
    Tick completion = 0;
    ServiceSource source = ServiceSource::L1Hit;
    bool usedAddrBus = false; //!< a bus transaction was required
};

/**
 * Private L1+L2 per core with snooping MESI coherence across L2s.
 *
 * Coherence state is held at the L2; the L1 is an inclusive latency
 * filter.  All latencies and bus occupancies come from MachineConfig.
 */
class TimingMemSystem
{
  public:
    explicit TimingMemSystem(const MachineConfig &cfg);

    /**
     * Perform one word access and return its completion time.
     * @param core issuing core
     * @param addr byte address (word-aligned accesses assumed)
     * @param isWrite store or successful RMW
     * @param now issue tick
     */
    TimingResult access(CoreId core, Addr addr, bool isWrite, Tick now);

    /**
     * Charge one CORD race-check request to the address/timestamp bus
     * (request + response; no data transfer -- paper Section 2.7.2).
     * @return bus cycles consumed by the charge (overhead attribution)
     */
    Tick chargeRaceCheck(Tick now);

    /**
     * Charge one memory-timestamp update broadcast to the
     * address/timestamp bus (paper Section 2.5).
     * @return bus cycles consumed by the charge (overhead attribution)
     */
    Tick chargeMemTsBroadcast(Tick now);

    /** Address/timestamp bus (exposed for stats/tests). */
    const BusChannel &addrBus() const { return addrBus_; }

    /** On-chip data bus. */
    const BusChannel &dataBus() const { return dataBus_; }

    /** Off-chip memory bus. */
    const BusChannel &memBus() const { return memBus_; }

    /** Per-source access counts. */
    std::uint64_t
    serviceCount(ServiceSource s) const
    {
        return serviceCounts_[static_cast<unsigned>(s)];
    }

    /** Export bus utilization and service-source counters ("bus.*",
     *  "service.*") into @p reg for metric snapshots (obs/metrics.h). */
    void exportStats(StatRegistry &reg) const;

    const MachineConfig &config() const { return cfg_; }

  private:
    struct L2State
    {
        Mesi mesi = Mesi::Invalid;
    };

    /** True when any other core's L2 holds the line. */
    bool remoteHolders(CoreId core, Addr line,
                       std::vector<CoreId> &holders) const;

    /** Evict handling: write back dirty victims, maintain inclusion. */
    void handleL2Victim(CoreId core,
                        const CacheArray<L2State>::Line &victim, Tick now);

    MachineConfig cfg_;
    BusChannel addrBus_;
    BusChannel dataBus_;
    BusChannel memBus_;
    std::vector<CacheArray<L2State>> l2_;
    std::vector<CacheArray<char>> l1_;
    std::uint64_t serviceCounts_[4] = {0, 0, 0, 0};
    /** Scratch for remoteHolders: reused across calls so the per-miss
     *  snoop never allocates (bounded by numCores). */
    mutable std::vector<CoreId> holdersScratch_;
};

} // namespace cord

#endif // CORD_MEM_TIMING_MEM_H

/**
 * @file
 * Figure 10 reproduction: percentage of injected dynamic instances of
 * missing synchronization that resulted in at least one data race,
 * as detected by the Ideal configuration.
 *
 * Paper finding: many removals are redundant (e.g. a critical section
 * re-protected by a lock the same thread held last), so the fraction
 * varies widely per application -- which is exactly why always-on
 * detection matters.
 */

#include <cstdio>

#include "bench_common.h"

using namespace cord;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    std::printf("CORD reproduction -- Figure 10\n");
    // Only the Ideal detector (built into the campaign) is needed.
    const auto results = bench::runAllCampaigns({});
    TextTable t({"App", "Injections", "Manifested", "Rate", "Timeouts",
                 "SyncInstances"});
    for (const auto &[app, r] : results) {
        t.addRow({app, std::to_string(r.injections),
                  std::to_string(r.manifested),
                  TextTable::percent(r.manifestationRate()),
                  std::to_string(r.timeouts),
                  std::to_string(r.totalInstances)});
    }
    const double avg = bench::averageOver(
        results, [](const CampaignResult &r) {
            return r.manifestationRate();
        });
    t.addRow({"Average", "", "", TextTable::percent(avg), "", ""});
    t.print("Figure 10: injected sync removals causing >=1 data race "
            "(per Ideal)");
    return 0;
}

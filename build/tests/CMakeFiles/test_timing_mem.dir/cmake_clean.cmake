file(REMOVE_RECURSE
  "CMakeFiles/test_timing_mem.dir/timing_mem_test.cpp.o"
  "CMakeFiles/test_timing_mem.dir/timing_mem_test.cpp.o.d"
  "test_timing_mem"
  "test_timing_mem.pdb"
  "test_timing_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Functional memory: the architectural word values of the simulated
 * machine.  The timing caches (mem/timing_mem.h) track only tags, so
 * loads and stores read and update this single store at their commit
 * tick; the commit order defined by the event queue is the machine's
 * memory order.
 *
 * Storage is page-granular: words live in dense 512-word pages indexed
 * by a flat page table (sim/flat_map.h), with a one-entry MRU cache in
 * front.  Workload accesses are heavily page-local, so the common load
 * or store is a compare plus an array index -- no per-word hash-map
 * node, probe, or allocation as in the previous per-word
 * unordered_map.  A per-page written bitmap keeps footprintWords()
 * exact (a page allocated by one store does not count its 511 untouched
 * words).
 */

#ifndef CORD_RUNTIME_VALUE_STORE_H
#define CORD_RUNTIME_VALUE_STORE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/flat_map.h"
#include "sim/types.h"

#ifdef CORD_LEGACY_KERNEL
#include <unordered_map>
#endif

namespace cord
{

#ifdef CORD_LEGACY_KERNEL

/** Legacy perf-reference implementation: one unordered_map node per
 *  word, as before the page rewrite (see CMakeLists.txt
 *  CORD_LEGACY_KERNEL).  forEachWord visits in hash order. */
class ValueStore
{
  public:
    std::uint64_t
    load(Addr a) const
    {
        auto it = mem_.find(wordAddr(a));
        return it == mem_.end() ? 0 : it->second;
    }

    void store(Addr a, std::uint64_t v) { mem_[wordAddr(a)] = v; }

    std::pair<std::uint64_t, bool>
    compareAndSwap(Addr a, std::uint64_t expected, std::uint64_t desired)
    {
        const std::uint64_t old = load(a);
        if (old == expected) {
            store(a, desired);
            return {old, true};
        }
        return {old, false};
    }

    std::size_t footprintWords() const { return mem_.size(); }

    void clear() { mem_.clear(); }

    template <typename Fn>
    void
    forEachWord(Fn &&fn) const
    {
        for (const auto &[a, v] : mem_)
            fn(a, v);
    }

  private:
    std::unordered_map<Addr, std::uint64_t> mem_;
};

#else

/** Word-granularity functional memory, zero-initialized. */
class ValueStore
{
  public:
    std::uint64_t
    load(Addr a) const
    {
        const std::uint64_t w = wordIndex(a);
        const Page *p = pageOf(w / kPageWords);
        return p ? p->words[w % kPageWords] : 0;
    }

    void
    store(Addr a, std::uint64_t v)
    {
        const std::uint64_t w = wordIndex(a);
        Page &p = ensurePage(w / kPageWords);
        const std::size_t off = w % kPageWords;
        std::uint64_t &bits = p.written[off >> 6];
        const std::uint64_t bit = std::uint64_t(1) << (off & 63);
        if ((bits & bit) == 0) {
            bits |= bit;
            ++wordCount_;
        }
        p.words[off] = v;
    }

    /** Atomic compare-and-swap at commit time.
     *  @return pair {old value, success} */
    std::pair<std::uint64_t, bool>
    compareAndSwap(Addr a, std::uint64_t expected, std::uint64_t desired)
    {
        const std::uint64_t old = load(a);
        if (old == expected) {
            store(a, desired);
            return {old, true};
        }
        return {old, false};
    }

    /** Number of distinct words ever stored to. */
    std::size_t footprintWords() const { return wordCount_; }

    void
    clear()
    {
        pages_.clear();
        pageIndex_.clear();
        wordCount_ = 0;
        mruPid_ = 0;
        mruIdx_ = 0;
    }

    /**
     * Visit every written word as (word address, value), e.g. for
     * final-state comparison in replay.  Visit order is page insertion
     * order, word order within a page -- deterministic for a given
     * access history, but not sorted by address.
     */
    template <typename Fn>
    void
    forEachWord(Fn &&fn) const
    {
        pageIndex_.forEach([&](Addr pid, const std::uint32_t &idx) {
            const Page &p = pages_[idx];
            for (std::size_t off = 0; off < kPageWords; ++off) {
                if (p.written[off >> 6] &
                    (std::uint64_t(1) << (off & 63)))
                    fn(static_cast<Addr>((pid * kPageWords + off) *
                                         kWordBytes),
                       p.words[off]);
            }
        });
    }

  private:
    static constexpr std::size_t kPageWords = 512; //!< 2KB of words

    struct Page
    {
        std::uint64_t words[kPageWords] = {};
        std::uint64_t written[kPageWords / 64] = {};
    };

    static std::uint64_t
    wordIndex(Addr a)
    {
        return wordAddr(a) / kWordBytes;
    }

    /** Resident page @p pid, or nullptr.  Refreshes the MRU entry
     *  (dense *index*, not a pointer: pages_ may reallocate later). */
    const Page *
    pageOf(std::uint64_t pid) const
    {
        if (mruPid_ == pid + 1)
            return &pages_[mruIdx_];
        const std::uint32_t *idx = pageIndex_.find(pid);
        if (!idx)
            return nullptr;
        mruPid_ = pid + 1;
        mruIdx_ = *idx;
        return &pages_[*idx];
    }

    Page &
    ensurePage(std::uint64_t pid)
    {
        if (const Page *p = pageOf(pid))
            return const_cast<Page &>(*p);
        const std::uint32_t idx =
            static_cast<std::uint32_t>(pages_.size());
        pages_.emplace_back();
        pageIndex_[pid] = idx;
        mruPid_ = pid + 1;
        mruIdx_ = idx;
        return pages_.back();
    }

    std::vector<Page> pages_;
    FlatAddrMap<std::uint32_t> pageIndex_;
    std::size_t wordCount_ = 0;
    mutable std::uint64_t mruPid_ = 0; //!< pid + 1; 0 = invalid
    mutable std::uint32_t mruIdx_ = 0;
};

#endif // CORD_LEGACY_KERNEL

} // namespace cord

#endif // CORD_RUNTIME_VALUE_STORE_H

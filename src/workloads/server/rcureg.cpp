/**
 * @file
 * rcureg -- epoch-published read-mostly registry (RCU-style).  Each
 * entry is an append-only chain of versioned value slots plus one sync
 * version word.  An updater builds the next version in a fresh slot
 * (copy-on-update -- the slot has never been visible to any reader)
 * and then publishes it with one sync store of the version word;
 * readers sync-load the version and walk that slot with plain loads,
 * never blocking and never taking a lock.  Slots are never reused, so
 * no grace period is needed and a clean run is race-free by
 * construction.  Updaters serialize per entry through a removable
 * mutex: removing it makes two updaters build the same "next" slot
 * concurrently -- racing writes to the same value words.
 */

#include <vector>

#include "sim/rng.h"
#include "workloads/factories.h"
#include "workloads/patterns.h"
#include "workloads/server/traffic.h"
#include "workloads/workload.h"

namespace cord
{
namespace
{

using server::TrafficConfig;
using server::TrafficStats;

class RcuReg final : public Workload
{
  public:
    const WorkloadMeta &
    meta() const override
    {
        static const WorkloadMeta m{
            "rcureg", "n/a (server tier)",
            "2 entries, 16*scale req/thread, 1-in-3 updates",
            "epoch-published versions + per-entry update mutex",
            "server"};
        return m;
    }

    void
    setup(const WorkloadParams &p, AddressSpace &as) override
    {
        params_ = p;
        const unsigned perThread = 16 * p.scale;

        TrafficConfig cfg;
        cfg.mode = server::ArrivalMode::Poisson;
        cfg.requests = perThread;
        cfg.loadPercent = p.loadPercent;
        cfg.meanGapTicks = kMeanGapTicks;
        arrivals_ = server::perThreadArrivals(cfg, p.numThreads, p.seed,
                                              kTrafficTag);

        // Request streams: entry + lookup/update, from seed substreams.
        // Every 4th request updates, so the registry stays read-mostly
        // while still issuing enough removable mutex instances.
        requests_.assign(p.numThreads, {});
        std::vector<unsigned> updates(kEntries, 0);
        for (unsigned t = 0; t < p.numThreads; ++t) {
            Rng rng(Rng::deriveSeed(Rng::deriveSeed(p.seed, kMixTag), t));
            for (unsigned i = 0; i < perThread; ++i) {
                Request r;
                r.entry = static_cast<unsigned>(rng.below(kEntries));
                r.update = (i % 3) == 2;
                if (r.update)
                    ++updates[r.entry];
                requests_[t].push_back(r);
            }
        }

        // One slot chain per entry, sized for every possible version:
        // slot v holds version v, slot 0 is the (all-zero) initial
        // value.  Append-only, so capacity = 1 + total updates.
        entries_.clear();
        for (unsigned e = 0; e < kEntries; ++e) {
            Entry en;
            en.mutex = as.allocSync("reg.updateMutex");
            en.version = as.allocSync("reg.version");
            en.maxVersions = 1 + updates[e];
            en.slots = as.allocSharedLineAligned(
                en.maxVersions * kSlotWords, "reg.slots");
            entries_.push_back(en);
        }

        stats_ = TrafficStats{};
        stats_.loadPercent = p.loadPercent;
        stats_.saturationLatency = 8 * kMeanGapTicks;
    }

    Task<void>
    body(SyncRuntime &rt, ThreadCtx &ctx) override
    {
        return run(rt, ctx);
    }

    void
    exportStats(StatRegistry &out) const override
    {
        stats_.exportInto(out);
    }

  private:
    static constexpr unsigned kEntries = 2;
    static constexpr unsigned kSlotWords = 6;
    static constexpr Tick kMeanGapTicks = 1200;
    static constexpr std::uint64_t kTrafficTag = 0x9c01;
    static constexpr std::uint64_t kMixTag = 0x9c02;

    struct Request
    {
        unsigned entry = 0;
        bool update = false;
    };

    struct Entry
    {
        Addr mutex = 0;
        Addr version = 0; //!< sync word: highest published version
        Addr slots = 0;
        unsigned maxVersions = 0;
    };

    Task<void>
    run(SyncRuntime &rt, ThreadCtx &ctx)
    {
        const unsigned tid = ctx.tid;
        const auto &arr = arrivals_[tid];
        const auto &reqs = requests_[tid];
        for (unsigned i = 0; i < reqs.size(); ++i) {
            co_await server::waitUntilTick(arr[i]);
            ++stats_.arrived;
            const Entry &en = entries_[reqs[i].entry];
            if (reqs[i].update) {
                co_await rt.lock(ctx, en.mutex);
                const std::uint64_t v =
                    (co_await opSyncLoad(en.version)).value;
                const std::uint64_t next = v + 1;
                cord_assert(next < en.maxVersions,
                            "rcureg: version chain overflow");
                co_await patterns::fillWords(
                    en.slots + next * kSlotWords * kWordBytes,
                    kSlotWords, next * 1000 + tid);
                // Model the copy/validation work of a real update while
                // the new slot is still private; this is the window an
                // unlocked concurrent updater races into.
                co_await opCompute(160);
                co_await opSyncStore(en.version, next);
                co_await rt.unlock(ctx, en.mutex);
            } else {
                const std::uint64_t v =
                    (co_await opSyncLoad(en.version)).value;
                co_await patterns::readWords(
                    en.slots + v * kSlotWords * kWordBytes, kSlotWords);
            }
            const Tick done = (co_await opCompute(8)).now;
            stats_.recordLatency(arr[i], done);
        }
    }

    WorkloadParams params_;
    std::vector<Entry> entries_;
    std::vector<std::vector<Tick>> arrivals_;
    std::vector<std::vector<Request>> requests_;
    TrafficStats stats_;
};

} // namespace

std::unique_ptr<Workload>
makeRcuReg()
{
    return std::make_unique<RcuReg>();
}

} // namespace cord

/**
 * @file
 * Residency model for detector access histories.
 *
 * The paper's configurations differ in *where* timestamps may live:
 * only for lines resident in the local L1 (L1Cache), in the local L2
 * (CORD default, L2Cache), or everywhere (Ideal, InfCache).  This class
 * wraps either a finite set-associative tag array or an unbounded flat
 * map behind one interface, invoking a callback whenever a line's
 * history is displaced (which is when CORD folds it into the
 * main-memory timestamps, Section 2.5).
 *
 * The eviction callback is a template parameter (not std::function):
 * getOrInsert/invalidate are instantiated per call-site lambda, so the
 * common hit path inlines completely with no indirect call or callable
 * allocation.  Call sites that need no callback use the one-argument
 * overloads.
 */

#ifndef CORD_CORD_HISTORY_CACHE_H
#define CORD_CORD_HISTORY_CACHE_H

#include <optional>

#include "mem/cache_array.h"
#include "mem/geometry.h"
#include "sim/flat_map.h"
#include "sim/types.h"

namespace cord
{

/**
 * Per-core history storage for one detector.
 *
 * Reference stability: in both modes a returned StateT reference is
 * only valid until the next getOrInsert or invalidate on the same
 * cache.  Finite mode recycles tag-array slots on eviction (a stale
 * reference silently aliases a different line); infinite mode stores
 * state in dense vectors that reallocate on insert and swap on erase.
 * Callers must therefore not hold a returned reference across a
 * subsequent getOrInsert/invalidate (the no-hold-across-insert
 * contract; regression-tested with ASan in
 * tests/history_cache_test.cpp).
 *
 * @tparam StateT per-line detector state
 */
template <typename StateT>
class HistoryCache
{
  public:
    /** Unbounded residency (Ideal / InfCache configurations). */
    HistoryCache() : infinite_(true) {}

    /** Finite residency following @p geo (L1Cache / L2Cache / CORD). */
    explicit HistoryCache(const CacheGeometry &geo)
        : infinite_(false), array_(std::in_place, geo)
    {
        geo.validate();
    }

    bool infinite() const { return infinite_; }

    /** Look up the line's state without allocating. */
    StateT *
    find(Addr a)
    {
        const Addr la = lineAddr(a);
        if (infinite_)
            return map_.find(la);
        auto *line = array_->find(la);
        return line ? &line->state : nullptr;
    }

    /**
     * Look up or allocate the line's state, updating recency.  When a
     * finite set overflows, the LRU victim's state is passed to
     * @p onEvict (signature `void(Addr, StateT &)`) before being
     * discarded.
     *
     * The returned reference is invalidated -- in the aliasing sense
     * described on the class -- by the next getOrInsert or invalidate
     * call; do not hold it across either.
     */
    template <typename EvictFn>
    StateT &
    getOrInsert(Addr a, EvictFn &&onEvict)
    {
        const Addr la = lineAddr(a);
        if (infinite_)
            return map_[la];
        if (auto *line = array_->touch(la))
            return line->state;
        std::optional<typename CacheArray<StateT>::Line> victim;
        auto &fresh = array_->insert(la, victim);
        if (victim)
            onEvict(victim->addr, victim->state);
        return fresh.state;
    }

    /** getOrInsert without an eviction callback. */
    StateT &
    getOrInsert(Addr a)
    {
        return getOrInsert(a, [](Addr, StateT &) {});
    }

    /**
     * Drop the line's history (coherence invalidation), passing the
     * state to @p onEvict first.
     * @return true when the line was resident.
     */
    template <typename EvictFn>
    bool
    invalidate(Addr a, EvictFn &&onEvict)
    {
        const Addr la = lineAddr(a);
        if (infinite_) {
            StateT *st = map_.find(la);
            if (!st)
                return false;
            onEvict(la, *st);
            map_.erase(la);
            return true;
        }
        auto *line = array_->find(la);
        if (!line)
            return false;
        onEvict(la, line->state);
        line->valid = false;
        return true;
    }

    /** invalidate without an eviction callback. */
    bool
    invalidate(Addr a)
    {
        return invalidate(a, [](Addr, StateT &) {});
    }

    /**
     * Visit every resident line's state (the CORD cache walker).
     * Infinite mode visits in insertion order (see sim/flat_map.h), so
     * the walk is deterministic across platforms; @p fn must not
     * insert into or erase from this cache.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        if (infinite_) {
            map_.forEach(fn);
        } else {
            array_->forEach([&](auto &line) { fn(line.addr, line.state); });
        }
    }

    std::size_t
    residentCount() const
    {
        return infinite_ ? map_.size() : array_->residentCount();
    }

  private:
    bool infinite_;
    std::optional<CacheArray<StateT>> array_;
    FlatAddrMap<StateT> map_;
};

} // namespace cord

#endif // CORD_CORD_HISTORY_CACHE_H

#include "sim/logging.h"

#include <cstdio>
#include <cstdlib>

namespace cord
{

int
logVerbosity()
{
    static const int level = [] {
        const char *v = std::getenv("CORD_VERBOSITY");
        if (!v || !*v)
            return 2;
        return std::atoi(v);
    }();
    return level;
}

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logVerbosity() < 1)
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logVerbosity() < 2)
        return;
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace cord

/**
 * @file
 * The schedule log: a compact record of every decision a SchedulePolicy
 * made during one run, sufficient to replay the explored interleaving
 * exactly (sched/replay.h).
 *
 * Wire format "cord-schedlog-v1" (LEB128 varints via cord/log_codec.h):
 *
 *   magic   4 bytes        'C' 'S' 'L' '1'
 *   version varint         1
 *   policy  varint         SchedKind of the recording policy
 *   seed    varint         policy seed of the recorded run
 *   threads varint         thread count of the recorded run
 *   sig     varint         interleaving signature of the recorded run
 *   count   varint         number of decisions
 *   count * varint         (value << 1) | point
 *
 * Each decision encodes its SchedPoint kind in the low bit, so the
 * typical entry -- a pick among few candidates or a zero delay -- costs
 * one byte.  The signature lets `cordsim --replay-sched` verify, from
 * the log file alone, that the replayed run reproduced the recorded
 * interleaving.
 */

#ifndef CORD_SCHED_SCHED_LOG_H
#define CORD_SCHED_SCHED_LOG_H

#include <cstdint>
#include <string>
#include <vector>

#include "sched/policy.h"

namespace cord
{

/** One recorded decision. */
struct ScheduleDecision
{
    SchedPoint point = SchedPoint::Pick;
    std::uint64_t value = 0;
};

/** The decision sequence of one run, plus replay metadata. */
class ScheduleLog
{
  public:
    void
    push(SchedPoint point, std::uint64_t value)
    {
        entries_.push_back(ScheduleDecision{point, value});
    }

    const std::vector<ScheduleDecision> &entries() const
    {
        return entries_;
    }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    void
    clear()
    {
        entries_.clear();
        policyKind = 0;
        seed = 0;
        numThreads = 0;
        signature = 0;
    }

    /// @{ @name Replay metadata, stamped by the recorder
    std::uint64_t policyKind = 0; //!< SchedKind of the recording policy
    std::uint64_t seed = 0;       //!< policy seed of the recorded run
    std::uint64_t numThreads = 0; //!< thread count of the recorded run
    std::uint64_t signature = 0;  //!< recorded interleaving signature
    /// @}

  private:
    std::vector<ScheduleDecision> entries_;
};

/** Encode @p log into the cord-schedlog-v1 wire format. */
std::vector<std::uint8_t> encodeScheduleLog(const ScheduleLog &log);

/**
 * Decode a cord-schedlog-v1 document.
 * @return false (with @p err set when non-null) on malformed input
 */
bool decodeScheduleLog(const std::vector<std::uint8_t> &bytes,
                       ScheduleLog &out, std::string *err = nullptr);

/** Encode @p log and write it to @p path (fatal on I/O error). */
void saveScheduleLog(const ScheduleLog &log, const std::string &path);

/**
 * Read and decode @p path.
 * @return false (with @p err set when non-null) when the file cannot
 *         be read or does not decode
 */
bool loadScheduleLog(const std::string &path, ScheduleLog &out,
                     std::string *err = nullptr);

} // namespace cord

#endif // CORD_SCHED_SCHED_LOG_H

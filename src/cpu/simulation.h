/**
 * @file
 * The execution engine: drives thread coroutines on simulated cores,
 * times every operation through the MESI memory hierarchy, commits
 * accesses to the functional value store in a deterministic global
 * order, and publishes the committed access stream to the attached
 * detectors (CORD, vector-clock variants, Ideal).
 *
 * An optional ExecutionGate throttles instruction retirement, which is
 * how deterministic replay (cord/replay.h) enforces the recorded order.
 */

#ifndef CORD_CPU_SIMULATION_H
#define CORD_CPU_SIMULATION_H

#include <cstdint>
#include <memory>
#include <vector>

#include "cord/detector.h"
#include "cpu/detector_lane.h"
#include "mem/machine_config.h"
#include "obs/profiler.h"
#include "mem/timing_mem.h"
#include "runtime/sim_task.h"
#include "runtime/value_store.h"
#include "sched/policy.h"
#include "sched/sched_log.h"
#include "sim/event_queue.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace cord
{

/**
 * Controls instruction retirement (deterministic replay).
 *
 * allowance() asks how many of the next @p want instructions thread
 * @p tid may retire right now; 0 means the thread must wait and retry.
 */
class ExecutionGate
{
  public:
    virtual ~ExecutionGate() = default;

    virtual std::uint64_t allowance(ThreadId tid, std::uint64_t want) = 0;

    /** @p n instructions were retired by @p tid. */
    virtual void onRetired(ThreadId tid, std::uint64_t n) = 0;
};

/** One simulated execution of a set of thread coroutines. */
class Simulation : public CordTrafficSink
{
  public:
    /**
     * @param cfg machine topology and timing
     * @param numThreads number of software threads that will be spawned
     */
    Simulation(const MachineConfig &cfg, unsigned numThreads);
    ~Simulation() override;

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /**
     * Bind @p body as the program of thread @p tid, pinned to core
     * tid % numCores.  Must be called once per tid before run().
     */
    void spawn(ThreadId tid, Task<void> body);

    /** Attach a passive detector (not owned). */
    void addDetector(Detector *d);

    /** Install a retirement gate (replay); may be nullptr. */
    void setGate(ExecutionGate *g) { gate_ = g; }

    /**
     * Host-parallelism budget for this run (`--sim-shards`).  With
     * shards > 1, pure-observer detectors (Detector::pureObserver) are
     * replayed on up to shards-1 detector-lane worker threads
     * (cpu/detector_lane.h); everything order-coupled -- cores, the
     * memory system, sink-bound detectors -- stays on the calling
     * thread, whose event order is untouched.  Results are
     * bit-identical for every value.  Ignored (forced sequential) when
     * an EventTracer is active, since detectors emit trace events into
     * thread-local tracers.  Must be called before run().
     */
    void
    setSimShards(unsigned shards)
    {
        simShards_ = shards == 0 ? 1 : shards;
    }

    unsigned simShards() const { return simShards_; }

    /** Host-side telemetry of the parallel lanes (volatile: never part
     *  of simulated results).  Valid after run(). */
    struct PdesTelemetry
    {
        unsigned shardsRequested = 1; //!< setSimShards value
        unsigned lanes = 0;           //!< detector lanes actually run
        std::uint64_t laneRecords = 0; //!< records replayed off-thread
        std::uint64_t laneBatches = 0; //!< handoff batches
        std::uint64_t producerWaitNs = 0; //!< backpressure stalls
        std::uint64_t laneIdleNs = 0;  //!< worker waits for work
        std::uint64_t joinNs = 0;      //!< end-of-run barrier wait
    };

    const PdesTelemetry &pdes() const { return pdes_; }

    /**
     * Attach a scheduling policy (sched/policy.h); may be nullptr
     * (default): with no policy the engine takes its original
     * round-robin path untouched.  When @p rec is non-null every policy
     * answer is appended to it, which is what `--replay-sched` replays
     * (neither pointer is owned; both must outlive run()).  Not
     * meaningful together with an ExecutionGate: gated runs take their
     * order from the gate and skip the memDelay query.
     */
    void
    setSchedulePolicy(SchedulePolicy *p, ScheduleLog *rec = nullptr)
    {
        sched_ = p;
        schedRec_ = rec;
    }

    /**
     * Run until every thread finishes or @p maxTicks elapses.
     * @return true when all threads finished (false = watchdog fired,
     *         e.g. an injected synchronization removal caused a hang)
     */
    bool run(Tick maxTicks = kMaxTick);

    /// @{ @name CordTrafficSink: charge CORD traffic to the buses
    void
    raceCheck(Tick now, Addr addr, unsigned sharers,
              std::uint64_t sharerMask) override
    {
        const Tick cycles =
            mem_.chargeRaceCheck(now, addr, sharers, sharerMask);
        if (Profiler *p = Profiler::active())
            p->addCycles(ProfDomain::CordCheck, cycles);
    }

    void
    memTsBroadcast(Tick now, FoldCause cause, Addr addr) override
    {
        const Tick cycles = mem_.chargeMemTsBroadcast(now, addr);
        if (Profiler *p = Profiler::active())
            p->addCycles(cause == FoldCause::Invalidation
                             ? ProfDomain::CordTimestamp
                             : ProfDomain::CordHistory,
                         cycles);
    }
    /// @}

    /** Tick at which the last thread finished. */
    Tick finishTick() const { return finishTick_; }

    bool allFinished() const { return finishedThreads_ == threads_.size(); }

    /** Instructions retired by @p tid. */
    std::uint64_t instrCount(ThreadId tid) const;

    /**
     * Order-insensitive-free checksum of every value loaded by @p tid,
     * in program order -- two executions are observationally identical
     * for the thread iff the checksums match (replay verification).
     */
    std::uint64_t readChecksum(ThreadId tid) const;

    /** Total committed memory accesses (all threads). */
    std::uint64_t committedAccesses() const { return committed_; }

    /**
     * FNV-1a over the committed (tid, kind, word address) stream in
     * commit order: a compact fingerprint of the interleaving this run
     * took.  Two runs with equal signatures committed the same accesses
     * in the same global order; explorations count distinct signatures
     * to measure how much of the schedule space they actually sampled.
     */
    std::uint64_t interleavingSignature() const { return sig_; }

    ValueStore &memory() { return values_; }
    const ValueStore &memory() const { return values_; }
    TimingMemSystem &mem() { return mem_; }
    EventQueue &events() { return events_; }
    unsigned numThreads() const
    {
        return static_cast<unsigned>(threads_.size());
    }

  private:
    struct Thread
    {
        ThreadId tid = 0;
        CoreId core = 0;
        ThreadDriver drv;
        std::uint64_t instrs = 0;
        std::uint64_t readChecksum = 0xcbf29ce484222325ULL; // FNV offset
        std::uint32_t computeRemaining = 0;
        std::uint64_t nextMigration = 0; //!< instr count of next move
        bool spawned = false;
        bool waiting = false; //!< an op or compute chunk is in flight
        bool blocked = false; //!< gate-blocked; retry event pending
        bool finished = false;
    };

    struct Core
    {
        std::vector<unsigned> threads; //!< indices into threads_
        unsigned rr = 0;               //!< round-robin cursor
        bool eventScheduled = false;
    };

    /** Schedule a core-issue event at the current tick. */
    void scheduleCore(CoreId c);

    /** Issue work for one core: pick a ready thread and advance it. */
    void coreStep(CoreId c);

    /** coreStep with a SchedulePolicy attached: same probe budget as
     *  the default path, but each scan's runnable candidates are
     *  offered to the policy instead of always taking the first. */
    void coreStepPolicy(CoreId c);

    /** Advance one thread until it issues an op or finishes.
     *  @return true when the core slot was consumed */
    bool runThread(Thread &t);

    /** Re-pin @p t to @p newCore (scheduler-driven migration). */
    void moveThread(Thread &t, CoreId newCore);

    /** Dispatch the thread's pending memory operation. */
    void issueMemOp(Thread &t);

    /** Commit a completed memory op: values, detectors, result. */
    void commitMemOp(Thread &t, const OpRequest &op);

    void publish(Thread &t, Addr addr, AccessKind kind,
                 std::uint64_t value);

    void finishThread(Thread &t);

    void foldChecksum(Thread &t, Addr addr, std::uint64_t value);

    /** Split detectors_ into inline + lane groups for this run. */
    void partitionDetectors();

    /** Join all lanes; when @p runFinish, call Detector::finish() on
     *  lane detectors (on this thread) to mirror the sequential path. */
    void settleLanes(bool runFinish);

    /** Gate-retry delay when a thread is blocked (replay only). */
    static constexpr Tick kGateRetryTicks = 32;

    MachineConfig cfg_;
    EventQueue events_;
    TimingMemSystem mem_;
    ValueStore values_;
    // unique_ptr: ThreadDriver is immovable and in-flight events capture
    // Thread addresses, so element addresses must be stable.
    std::vector<std::unique_ptr<Thread>> threads_;
    std::vector<Core> cores_;
    std::vector<Detector *> detectors_;
    std::vector<Detector *> inlineDetectors_; //!< valid during run()
    std::vector<std::unique_ptr<DetectorLane>> lanes_;
    PdesTelemetry pdes_;
    unsigned simShards_ = 1;
    ExecutionGate *gate_ = nullptr;
    SchedulePolicy *sched_ = nullptr;
    ScheduleLog *schedRec_ = nullptr;
    std::vector<std::size_t> candPos_;  //!< scratch: candidate slots
    std::vector<ThreadId> candTids_;    //!< scratch: candidate tids
    std::size_t finishedThreads_ = 0;
    Tick finishTick_ = 0;
    std::uint64_t committed_ = 0;
    std::uint64_t sig_ = 0xcbf29ce484222325ULL; // FNV offset basis
};

} // namespace cord

#endif // CORD_CPU_SIMULATION_H

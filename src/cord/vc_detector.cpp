#include "cord/vc_detector.h"

#include "obs/profiler.h"
#include "sim/logging.h"

namespace cord
{

VcDetector::VcDetector(const VcConfig &cfg, std::string name)
    : Detector(std::move(name)), cfg_(cfg),
      memReadVc_(cfg.numThreads), memWriteVc_(cfg.numThreads)
{
    cord_assert(cfg_.numCores > 0 && cfg_.numThreads > 0,
                "VC detector needs at least one core and one thread");
    cord_assert(cfg_.entriesPerLine >= 1 && cfg_.entriesPerLine <= 2,
                "one or two timestamps per line");
    caches_.reserve(cfg_.numCores);
    for (unsigned i = 0; i < cfg_.numCores; ++i) {
        if (cfg_.infiniteResidency)
            caches_.emplace_back();
        else
            caches_.emplace_back(cfg_.residency);
    }
    vc_.reserve(cfg_.numThreads);
    for (ThreadId t = 0; t < cfg_.numThreads; ++t) {
        vc_.emplace_back(cfg_.numThreads);
        vc_.back().tick(t); // each thread starts at component 1
    }
    dataRaces_ = stats_.counter("vc.dataRaces");
    orderRaces_ = stats_.counter("vc.orderRaces");
    lineDisplacements_ = stats_.counter("vc.lineDisplacements");
    entryDisplacements_ = stats_.counter("vc.entryDisplacements");
    memVcJoins_ = stats_.counter("vc.memVcJoins");
}

void
VcDetector::foldIntoMemVc(const LineState &ls)
{
    if (!cfg_.memTimestamps)
        return;
    for (const Entry &e : ls.e) {
        if (!e.valid)
            continue;
        if (e.readBits)
            memReadVc_.join(e.vc);
        if (e.writeBits)
            memWriteVc_.join(e.vc);
    }
}

void
VcDetector::invalidateRemote(CoreId core, Addr addr)
{
    for (CoreId oc = 0; oc < cfg_.numCores; ++oc) {
        if (oc == core)
            continue;
        caches_[oc].invalidate(
            addr, [&](Addr, LineState &st) { foldIntoMemVc(st); });
    }
}

void
VcDetector::timestampLocal(CoreId core, Addr addr, bool isWrite,
                           const VectorClock &tvc)
{
    const std::uint16_t wbit =
        static_cast<std::uint16_t>(1u << wordInLine(addr));
    LineState &ls = caches_[core].getOrInsert(
        addr, [&](Addr, LineState &st) {
            foldIntoMemVc(st);
            lineDisplacements_.inc();
        });
    Entry *slot = nullptr;
    for (unsigned i = 0; i < cfg_.entriesPerLine; ++i) {
        if (ls.e[i].valid && ls.e[i].vc == tvc) {
            slot = &ls.e[i];
            break;
        }
    }
    if (!slot) {
        unsigned victim = 0;
        for (unsigned i = 1; i < cfg_.entriesPerLine; ++i) {
            if (!ls.e[victim].valid)
                break;
            if (!ls.e[i].valid || ls.e[i].seq < ls.e[victim].seq)
                victim = i;
        }
        if (ls.e[victim].valid) {
            LineState tmp;
            tmp.e[0] = ls.e[victim];
            foldIntoMemVc(tmp);
            entryDisplacements_.inc();
        }
        ls.e[victim] = Entry{};
        ls.e[victim].valid = true;
        ls.e[victim].vc = tvc;
        slot = &ls.e[victim];
    }
    slot->seq = ++seq_;
    if (isWrite)
        slot->writeBits |= wbit;
    else
        slot->readBits |= wbit;
}

void
VcDetector::onAccess(const MemEvent &ev)
{
    ProfWallTimer pt(ProfDomain::VcBaseline);
    cord_assert(ev.tid < cfg_.numThreads, "unknown thread ", ev.tid);
    cord_assert(ev.core < cfg_.numCores, "unknown core ", ev.core);

    const bool isW = ev.isWrite();
    const bool sync = ev.isSync();
    const std::uint16_t wbit =
        static_cast<std::uint16_t>(1u << wordInLine(ev.addr));

    VectorClock &tvc = vc_[ev.tid];
    const bool localHit = caches_[ev.core].find(ev.addr) != nullptr;

    // Snoop remote histories for conflicts on this word.
    bool anyRemoteLine = false;
    for (CoreId oc = 0; oc < cfg_.numCores; ++oc) {
        if (oc == ev.core)
            continue;
        LineState *ls = caches_[oc].find(ev.addr);
        if (!ls)
            continue;
        anyRemoteLine = true;
        for (const Entry &e : ls->e) {
            if (!e.valid)
                continue;
            const bool conflicts =
                isW ? (((e.readBits | e.writeBits) & wbit) != 0)
                    : ((e.writeBits & wbit) != 0);
            if (conflicts && !e.vc.lessEq(tvc)) {
                // Unordered conflict: a race.  Data races do not
                // introduce ordering (the VC configurations are
                // detection baselines, not order recorders), so they
                // do not mask later races; sync races join as usual.
                if (!sync) {
                    report_.record(
                        {ev.tick, ev.addr, ev.tid, ev.kind, 0, 0});
                    dataRaces_.inc();
                } else {
                    tvc.join(e.vc);
                }
                orderRaces_.inc();
            }
            if (sync && !isW && (e.writeBits & wbit) != 0) {
                // Sync read acquires the writer's ordering.
                tvc.join(e.vc);
            }
        }
    }

    // Line supplied by memory: consult the memory vector timestamps,
    // never reporting races found this way.
    if (!localHit && !anyRemoteLine && cfg_.memTimestamps) {
        if (!memWriteVc_.lessEq(tvc)) {
            tvc.join(memWriteVc_);
            memVcJoins_.inc();
        }
        if (isW && !memReadVc_.lessEq(tvc)) {
            tvc.join(memReadVc_);
            memVcJoins_.inc();
        }
    }

    if (isW)
        invalidateRemote(ev.core, ev.addr);

    timestampLocal(ev.core, ev.addr, isW, tvc);

    // Advance own component after every synchronization write.
    if (sync && isW)
        tvc.tick(ev.tid);
}

} // namespace cord

file(REMOVE_RECURSE
  "CMakeFiles/test_simulation.dir/simulation_test.cpp.o"
  "CMakeFiles/test_simulation.dir/simulation_test.cpp.o.d"
  "test_simulation"
  "test_simulation.pdb"
  "test_simulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_ideal_detector.
# This may be replaced when dependencies are built.

/**
 * @file
 * Unit tests for the order-log wire codec (cord/log_codec.h): the
 * 8-byte format round-trips, 64-bit clocks are reconstructed across
 * 16-bit wraparounds, and the bounded-jump invariant is enforced.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "cord/clock.h"
#include "cord/cord_detector.h"
#include "cord/log_codec.h"
#include "harness/runner.h"

namespace cord
{
namespace
{

TEST(LogCodec, EmptyLogRoundTrips)
{
    OrderLog log;
    const auto bytes = encodeOrderLog(log);
    EXPECT_TRUE(bytes.empty());
    EXPECT_EQ(decodeOrderLog(bytes).size(), 0u);
}

TEST(LogCodec, SimpleRoundTrip)
{
    OrderLog log;
    log.append(0, 1, 100);
    log.append(1, 1, 50);
    log.append(0, 7, 25);
    log.append(1, 9, 10);

    const auto bytes = encodeOrderLog(log);
    EXPECT_EQ(bytes.size(), 4 * OrderLog::kEntryWireBytes);

    const OrderLog decoded = decodeOrderLog(bytes);
    ASSERT_EQ(decoded.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(decoded.entries()[i].tid, log.entries()[i].tid);
        EXPECT_EQ(decoded.entries()[i].clock, log.entries()[i].clock);
        EXPECT_EQ(decoded.entries()[i].instrs, log.entries()[i].instrs);
    }
}

TEST(LogCodec, ReconstructsClocksAcrossWraparound)
{
    // Per-thread clocks stride across several 16-bit epochs in jumps
    // below the half-window; the decoder must recover all of them.
    OrderLog log;
    Ts64 clock = 1;
    for (int i = 0; i < 40; ++i) {
        log.append(0, clock, 10 + i);
        clock += 12000; // < 2^15 - 1, crosses 64K boundaries repeatedly
    }
    ASSERT_TRUE(isWireEncodable(log));
    const OrderLog decoded = decodeOrderLog(encodeOrderLog(log));
    ASSERT_EQ(decoded.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i)
        EXPECT_EQ(decoded.entries()[i].clock, log.entries()[i].clock)
            << "entry " << i;
}

TEST(LogCodec, InterleavedThreadsReconstructIndependently)
{
    OrderLog log;
    Ts64 c0 = 1;
    Ts64 c1 = 1;
    for (int i = 0; i < 30; ++i) {
        log.append(0, c0, 5);
        log.append(1, c1, 6);
        c0 += 9000;
        c1 += 15000;
    }
    const OrderLog decoded = decodeOrderLog(encodeOrderLog(log));
    for (std::size_t i = 0; i < log.size(); ++i)
        EXPECT_EQ(decoded.entries()[i].clock, log.entries()[i].clock);
}

TEST(LogCodec, RejectsUnboundedJumps)
{
    OrderLog log;
    log.append(0, 1, 10);
    log.append(0, 1 + kClockWindow, 10); // jump == window: ambiguous
    EXPECT_FALSE(isWireEncodable(log));
    EXPECT_DEATH(encodeOrderLog(log), "bounded-jump");
}

TEST(LogCodec, RealRecordingRoundTrips)
{
    // Record a real workload; its log must be wire-encodable and must
    // survive the round trip bit-exactly (this is the artifact a real
    // CORD chip would dump to memory).
    CordConfig cc;
    CordDetector recorder(cc);
    RunSetup rec;
    rec.workload = "fmm";
    rec.params.seed = 17;
    rec.detectors = {&recorder};
    const RunOutcome out = runWorkload(rec);
    ASSERT_TRUE(out.completed);
    const OrderLog &log = recorder.orderLog();
    ASSERT_GT(log.size(), 0u);
    ASSERT_TRUE(isWireEncodable(log));

    const OrderLog decoded = decodeOrderLog(encodeOrderLog(log));
    ASSERT_EQ(decoded.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(decoded.entries()[i].tid, log.entries()[i].tid);
        ASSERT_EQ(decoded.entries()[i].clock, log.entries()[i].clock)
            << "entry " << i;
        EXPECT_EQ(decoded.entries()[i].instrs, log.entries()[i].instrs);
    }
}

TEST(LogCodec, MaxLengthRunRoundTrips)
{
    // The 32-bit instruction-count field must carry its extremes.
    OrderLog log;
    log.append(0, 1, 0xffffffffu);
    log.append(0, 2, 1);
    log.append(0, 3, 0xffffffffu);
    const OrderLog decoded = decodeOrderLog(encodeOrderLog(log));
    ASSERT_EQ(decoded.size(), 3u);
    EXPECT_EQ(decoded.entries()[0].instrs, 0xffffffffu);
    EXPECT_EQ(decoded.entries()[2].instrs, 0xffffffffu);
}

TEST(LogCodec, LargestLegalJumpRoundTrips)
{
    // jump == kClockWindow - 1 is the boundary the window permits.
    OrderLog log;
    log.append(0, 1, 10);
    log.append(0, 1 + kClockWindow - 1, 10);
    ASSERT_TRUE(isWireEncodable(log));
    const OrderLog decoded = decodeOrderLog(encodeOrderLog(log));
    EXPECT_EQ(decoded.entries()[1].clock, 1 + kClockWindow - 1);
}

TEST(LogCodecLenient, CleanLogDecodesWithoutProblems)
{
    OrderLog log;
    log.append(0, 1, 100);
    log.append(1, 4, 50);
    const LenientDecode d = decodeOrderLogLenient(encodeOrderLog(log));
    EXPECT_TRUE(d.problems.empty());
    EXPECT_EQ(d.trailingBytes, 0u);
    EXPECT_EQ(d.log.size(), 2u);
}

TEST(LogCodecLenient, TruncatedBufferKeepsWholeEntries)
{
    OrderLog log;
    log.append(0, 1, 100);
    log.append(0, 2, 50);
    log.append(0, 3, 25);
    for (std::size_t cut = 1; cut < OrderLog::kEntryWireBytes; ++cut) {
        auto bytes = encodeOrderLog(log);
        bytes.resize(bytes.size() - cut);
        const LenientDecode d = decodeOrderLogLenient(bytes);
        EXPECT_EQ(d.log.size(), 2u) << "cut " << cut;
        EXPECT_EQ(d.trailingBytes, OrderLog::kEntryWireBytes - cut);
        ASSERT_EQ(d.problems.size(), 1u) << "cut " << cut;
        EXPECT_NE(d.problems[0].find("mid-entry"), std::string::npos);
    }
}

TEST(LogCodecLenient, SubEntryBufferIsAllTrailing)
{
    const std::vector<std::uint8_t> bytes(5, 0xab);
    const LenientDecode d = decodeOrderLogLenient(bytes);
    EXPECT_EQ(d.log.size(), 0u);
    EXPECT_EQ(d.trailingBytes, 5u);
    EXPECT_EQ(d.problems.size(), 1u);
}

TEST(LogCodecLenient, ZeroInstrEntryDroppedButAdvancesClockChain)
{
    OrderLog log;
    log.append(0, 1, 100);
    log.append(0, 30000, 50);
    log.append(0, 60000, 25);
    auto bytes = encodeOrderLog(log);
    // Zero out the middle entry's instruction count; the recorder
    // never emits such entries, so the decoder must flag it.
    for (std::size_t k = 4; k < OrderLog::kEntryWireBytes; ++k)
        bytes[OrderLog::kEntryWireBytes + k] = 0;

    const LenientDecode d = decodeOrderLogLenient(bytes);
    ASSERT_EQ(d.problems.size(), 1u);
    EXPECT_NE(d.problems[0].find("zero"), std::string::npos);
    // Dropped from the log, but clock reconstruction still saw it:
    // the final entry's 64-bit clock must be unchanged.
    ASSERT_EQ(d.log.size(), 2u);
    EXPECT_EQ(d.log.entries()[1].clock, 60000u);
}

TEST(LogCodecLenient, WraparoundSurvivesLenientPath)
{
    OrderLog log;
    Ts64 clock = 1;
    for (int i = 0; i < 40; ++i) {
        log.append(2, clock, 10);
        clock += 12000;
    }
    const LenientDecode d = decodeOrderLogLenient(encodeOrderLog(log));
    ASSERT_TRUE(d.problems.empty());
    ASSERT_EQ(d.log.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i)
        EXPECT_EQ(d.log.entries()[i].clock, log.entries()[i].clock);
}

TEST(LogCodec, SaveAndLoadRoundTrip)
{
    OrderLog log;
    log.append(0, 1, 100);
    log.append(1, 2, 64);
    log.append(0, 5, 32);
    const std::string path =
        ::testing::TempDir() + "log_codec_roundtrip.ordlog";
    saveOrderLog(log, path);
    const std::vector<std::uint8_t> bytes = loadLogBytes(path);
    EXPECT_EQ(bytes, encodeOrderLog(log));
    std::remove(path.c_str());
}

TEST(LogCodec, SaveAndLoadEmptyLog)
{
    const std::string path =
        ::testing::TempDir() + "log_codec_empty.ordlog";
    saveOrderLog(OrderLog{}, path);
    EXPECT_TRUE(loadLogBytes(path).empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace cord

#include "analysis/hb_analyzer.h"

#include <algorithm>

#include "sim/logging.h"

namespace cord
{

unsigned
HbAnalysis::threadsInTrace(const DecodedTrace &trace)
{
    unsigned maxTid = 0;
    bool any = false;
    for (const MemEvent &ev : trace.events) {
        maxTid = std::max(maxTid, static_cast<unsigned>(ev.tid));
        any = true;
    }
    for (const auto &[tid, instrs] : trace.threadEnds) {
        maxTid = std::max(maxTid, static_cast<unsigned>(tid));
        any = true;
    }
    return any ? maxTid + 1 : 0;
}

unsigned
HbAnalysis::resolveThreads(const DecodedTrace &trace, unsigned declared)
{
    // Never trust a declared count smaller than what the trace uses:
    // indexing per-thread state by an out-of-range ThreadId would be
    // UB-adjacent with asserts compiled out (CORD_ASSERT_LEVEL=0), and
    // a hostile header must not crash an offline analyzer.
    const unsigned derived = threadsInTrace(trace);
    return std::max(declared, derived);
}

HbAnalysis
HbAnalysis::analyze(const DecodedTrace &trace, unsigned numThreads)
{
    HbAnalysis a;
    a.declaredThreads_ = numThreads;
    a.numThreads_ = resolveThreads(trace, numThreads);
    if (a.numThreads_ == 0)
        return a;
    const unsigned n = a.numThreads_;

    // Thread vector clocks; components start at 1 so epoch 0 == never.
    std::vector<VectorClock> vc;
    vc.reserve(n);
    for (ThreadId t = 0; t < n; ++t) {
        vc.emplace_back(n);
        vc.back().tick(t);
    }
    std::unordered_map<Addr, VectorClock> syncVc;

    /** Per-word, per-thread epoch and tick of the last read / write. */
    struct WordHistory
    {
        std::vector<std::uint32_t> lastWriteEpoch, lastReadEpoch;
        std::vector<Tick> lastWriteTick, lastReadTick;
    };
    std::unordered_map<Addr, WordHistory> words;

    for (const MemEvent &ev : trace.events) {
        cord_assert(ev.tid < n, "trace thread ", ev.tid,
                    " out of range");
        VectorClock &tvc = vc[ev.tid];
        const Addr wa = wordAddr(ev.addr);

        if (ev.isSync()) {
            auto &svc = syncVc[wa];
            if (svc.size() == 0)
                svc = VectorClock(n);
            if (!ev.isWrite()) {
                tvc.join(svc);
            } else {
                svc.join(tvc);
                tvc.tick(ev.tid);
            }
            continue;
        }

        auto wit = words.find(wa);
        if (wit == words.end()) {
            WordHistory h;
            h.lastWriteEpoch.assign(n, 0);
            h.lastReadEpoch.assign(n, 0);
            h.lastWriteTick.assign(n, 0);
            h.lastReadTick.assign(n, 0);
            wit = words.emplace(wa, std::move(h)).first;
        }
        WordHistory &h = wit->second;

        for (ThreadId u = 0; u < n; ++u) {
            if (u == ev.tid)
                continue;
            const std::uint32_t we = h.lastWriteEpoch[u];
            if (we != 0 && tvc[u] < we) {
                a.races_.push_back(HbRace{ev.tick, wa, ev.tid, ev.kind,
                                          u, h.lastWriteTick[u], true});
                a.racyWords_.insert(wa);
                a.endpoints_.insert(
                    std::make_tuple(ev.tick, wa, ev.tid));
            }
            if (ev.isWrite()) {
                const std::uint32_t re = h.lastReadEpoch[u];
                if (re != 0 && tvc[u] < re) {
                    a.races_.push_back(
                        HbRace{ev.tick, wa, ev.tid, ev.kind, u,
                               h.lastReadTick[u], false});
                    a.racyWords_.insert(wa);
                    a.endpoints_.insert(
                        std::make_tuple(ev.tick, wa, ev.tid));
                }
            }
        }
        if (ev.isWrite()) {
            h.lastWriteEpoch[ev.tid] = tvc[ev.tid];
            h.lastWriteTick[ev.tid] = ev.tick;
        } else {
            h.lastReadEpoch[ev.tid] = tvc[ev.tid];
            h.lastReadTick[ev.tid] = ev.tick;
        }
    }
    return a;
}

} // namespace cord

/**
 * @file
 * Unit tests for the execution engine (cpu/simulation.h): instruction
 * accounting, compute timing at the configured issue width, functional
 * value semantics (loads/stores/CAS through the value store), the
 * committed-access stream seen by detectors, read checksums, and
 * multiple threads per core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cord/detector.h"
#include "cpu/simulation.h"

namespace cord
{
namespace
{

/** Captures the committed access stream. */
class Capture : public Detector
{
  public:
    Capture() : Detector("capture") {}
    std::vector<MemEvent> events;
    std::vector<std::pair<ThreadId, std::uint64_t>> ends;

    void onAccess(const MemEvent &ev) override { events.push_back(ev); }
    void
    onThreadEnd(ThreadId tid, std::uint64_t instrs) override
    {
        ends.emplace_back(tid, instrs);
    }
};

Task<void>
simpleProgram(Addr base)
{
    co_await opCompute(8);
    co_await opStore(base, 5);
    const OpResult r = co_await opLoad(base);
    co_await opStore(base + kWordBytes, r.value + 1);
    co_await opCas(base, 5, 9);
    co_await opCas(base, 5, 11); // fails: value is 9
}

TEST(Simulation, FunctionalSemanticsAndEventStream)
{
    MachineConfig cfg;
    Simulation sim(cfg, 1);
    Capture cap;
    sim.addDetector(&cap);
    sim.spawn(0, simpleProgram(0x1000));
    ASSERT_TRUE(sim.run());

    EXPECT_EQ(sim.memory().load(0x1000), 9u);
    EXPECT_EQ(sim.memory().load(0x1004), 6u);

    // Events: store, load, store, cas(read+write), cas(read only).
    ASSERT_EQ(cap.events.size(), 6u);
    EXPECT_EQ(cap.events[0].kind, AccessKind::DataWrite);
    EXPECT_EQ(cap.events[0].value, 5u);
    EXPECT_EQ(cap.events[1].kind, AccessKind::DataRead);
    EXPECT_EQ(cap.events[1].value, 5u);
    EXPECT_EQ(cap.events[2].kind, AccessKind::DataWrite);
    EXPECT_EQ(cap.events[3].kind, AccessKind::SyncRead);
    EXPECT_EQ(cap.events[4].kind, AccessKind::SyncWrite);
    EXPECT_EQ(cap.events[4].value, 9u);
    EXPECT_EQ(cap.events[5].kind, AccessKind::SyncRead);
    EXPECT_EQ(cap.events[5].value, 9u) << "failed CAS reads old value";

    // Instruction accounting: 8 compute + 5 memory ops.
    EXPECT_EQ(sim.instrCount(0), 13u);
    ASSERT_EQ(cap.ends.size(), 1u);
    EXPECT_EQ(cap.ends[0].second, 13u);
    // Successive events carry increasing instruction counts.
    EXPECT_EQ(cap.events[0].instrCount, 9u);
    EXPECT_EQ(cap.events[5].instrCount, 13u);
}

Task<void>
computeOnly(std::uint32_t n)
{
    co_await opCompute(n);
}

TEST(Simulation, ComputeRespectsIssueWidth)
{
    MachineConfig cfg;
    cfg.issueWidth = 4;
    Simulation sim(cfg, 1);
    sim.spawn(0, computeOnly(400));
    ASSERT_TRUE(sim.run());
    EXPECT_EQ(sim.finishTick(), 100u);
    EXPECT_EQ(sim.instrCount(0), 400u);
}

TEST(Simulation, ComputeScaleMultiplies)
{
    MachineConfig cfg;
    cfg.issueWidth = 4;
    cfg.computeScale = 10;
    Simulation sim(cfg, 1);
    sim.spawn(0, computeOnly(400));
    ASSERT_TRUE(sim.run());
    EXPECT_EQ(sim.finishTick(), 1000u);
    EXPECT_EQ(sim.instrCount(0), 4000u);
}

Task<void>
pingPong(Addr mine, Addr theirs, unsigned iters)
{
    for (unsigned i = 1; i <= iters; ++i) {
        co_await opStore(mine, i);
        OpResult r{};
        while (r.value < i)
            r = co_await opLoad(theirs);
    }
}

TEST(Simulation, TwoThreadsOneCore)
{
    // Both threads pinned to core 0 must still interleave (round-robin
    // at operation boundaries) and make progress.
    MachineConfig cfg;
    cfg.numCores = 1;
    Simulation sim(cfg, 2);
    sim.spawn(0, pingPong(0x100, 0x200, 20));
    sim.spawn(1, pingPong(0x200, 0x100, 20));
    ASSERT_TRUE(sim.run(100000000ULL));
    EXPECT_EQ(sim.memory().load(0x100), 20u);
    EXPECT_EQ(sim.memory().load(0x200), 20u);
}

TEST(Simulation, EightThreadsFourCores)
{
    MachineConfig cfg;
    Simulation sim(cfg, 8);
    for (unsigned t = 0; t < 8; ++t)
        sim.spawn(static_cast<ThreadId>(t),
                  simpleProgram(0x10000 + t * 0x1000));
    ASSERT_TRUE(sim.run(100000000ULL));
    for (unsigned t = 0; t < 8; ++t)
        EXPECT_EQ(sim.memory().load(0x10000 + t * 0x1000), 9u);
}

TEST(Simulation, ChecksumReflectsLoadedValues)
{
    MachineConfig cfg;
    Simulation simA(cfg, 1);
    simA.spawn(0, simpleProgram(0x1000));
    simA.run();
    Simulation simB(cfg, 1);
    simB.spawn(0, simpleProgram(0x1000));
    simB.run();
    EXPECT_EQ(simA.readChecksum(0), simB.readChecksum(0));

    // A different address stream yields a different checksum.
    Simulation simC(cfg, 1);
    simC.spawn(0, simpleProgram(0x2000));
    simC.run();
    EXPECT_NE(simA.readChecksum(0), simC.readChecksum(0));
}

TEST(Simulation, WatchdogReturnsFalse)
{
    // A thread that spins forever must trip the watchdog.
    MachineConfig cfg;
    Simulation sim(cfg, 1);
    auto spin = [](Addr a) -> Task<void> {
        for (;;) {
            const OpResult r = co_await opLoad(a);
            if (r.value == 1)
                co_return; // never: nobody stores
            co_await opCompute(16);
        }
    };
    sim.spawn(0, spin(0x100));
    EXPECT_FALSE(sim.run(50000));
    EXPECT_FALSE(sim.allFinished());
}

TEST(SimulationDeath, SpawnTwiceIsABug)
{
    MachineConfig cfg;
    Simulation sim(cfg, 1);
    sim.spawn(0, computeOnly(1));
    EXPECT_DEATH(sim.spawn(0, computeOnly(1)), "twice");
}

TEST(SimulationDeath, RunWithoutSpawnIsABug)
{
    MachineConfig cfg;
    Simulation sim(cfg, 2);
    sim.spawn(0, computeOnly(1));
    EXPECT_DEATH(sim.run(), "never spawned");
}

} // namespace
} // namespace cord

/**
 * @file
 * Figure 12 reproduction: CORD's problem detection rate, relative to a
 * CORD-like vector-clock scheme (the VC-L2Cache configuration) and to
 * the Ideal configuration.
 *
 * Paper finding: CORD detects ~83% of the problems the vector-clock
 * scheme finds and ~77% of what Ideal finds; water-n2 is the hard case
 * where scalar clocks find (almost) nothing.
 */

#include <cstdio>

#include "bench_common.h"

using namespace cord;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    std::printf("CORD reproduction -- Figure 12\n");
    const auto results =
        bench::runAllCampaigns({cordSpec(16, "CORD"), vcL2CacheSpec()});
    TextTable t({"App", "Manifested", "CORD", "VC-L2", "vs VectorClock",
                 "vs Ideal"});
    for (const auto &[app, r] : results) {
        const unsigned cordN =
            r.problems.count("CORD") ? r.problems.at("CORD") : 0;
        const unsigned vcN = r.problems.count("VC-L2Cache")
                                 ? r.problems.at("VC-L2Cache")
                                 : 0;
        t.addRow({app, std::to_string(r.manifested),
                  std::to_string(cordN), std::to_string(vcN),
                  TextTable::percent(
                      r.problemRateVs("CORD", "VC-L2Cache")),
                  TextTable::percent(r.problemRateVsIdeal("CORD"))});
    }
    const double avgVsVc = bench::averageOver(
        results, [](const CampaignResult &r) {
            return r.problemRateVs("CORD", "VC-L2Cache");
        });
    const double avgVsIdeal = bench::averageOver(
        results, [](const CampaignResult &r) {
            return r.problemRateVsIdeal("CORD");
        });
    t.addRow({"Average", "", "", "", TextTable::percent(avgVsVc),
              TextTable::percent(avgVsIdeal)});
    t.print("Figure 12: problem detection rate "
            "(paper: 83% vs vector clock, 77% vs Ideal)");
    return 0;
}

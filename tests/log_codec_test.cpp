/**
 * @file
 * Unit tests for the order-log wire codec (cord/log_codec.h): the
 * 8-byte format round-trips, 64-bit clocks are reconstructed across
 * 16-bit wraparounds, and the bounded-jump invariant is enforced.
 */

#include <gtest/gtest.h>

#include "cord/clock.h"
#include "cord/cord_detector.h"
#include "cord/log_codec.h"
#include "harness/runner.h"

namespace cord
{
namespace
{

TEST(LogCodec, EmptyLogRoundTrips)
{
    OrderLog log;
    const auto bytes = encodeOrderLog(log);
    EXPECT_TRUE(bytes.empty());
    EXPECT_EQ(decodeOrderLog(bytes).size(), 0u);
}

TEST(LogCodec, SimpleRoundTrip)
{
    OrderLog log;
    log.append(0, 1, 100);
    log.append(1, 1, 50);
    log.append(0, 7, 25);
    log.append(1, 9, 10);

    const auto bytes = encodeOrderLog(log);
    EXPECT_EQ(bytes.size(), 4 * OrderLog::kEntryWireBytes);

    const OrderLog decoded = decodeOrderLog(bytes);
    ASSERT_EQ(decoded.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(decoded.entries()[i].tid, log.entries()[i].tid);
        EXPECT_EQ(decoded.entries()[i].clock, log.entries()[i].clock);
        EXPECT_EQ(decoded.entries()[i].instrs, log.entries()[i].instrs);
    }
}

TEST(LogCodec, ReconstructsClocksAcrossWraparound)
{
    // Per-thread clocks stride across several 16-bit epochs in jumps
    // below the half-window; the decoder must recover all of them.
    OrderLog log;
    Ts64 clock = 1;
    for (int i = 0; i < 40; ++i) {
        log.append(0, clock, 10 + i);
        clock += 12000; // < 2^15 - 1, crosses 64K boundaries repeatedly
    }
    ASSERT_TRUE(isWireEncodable(log));
    const OrderLog decoded = decodeOrderLog(encodeOrderLog(log));
    ASSERT_EQ(decoded.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i)
        EXPECT_EQ(decoded.entries()[i].clock, log.entries()[i].clock)
            << "entry " << i;
}

TEST(LogCodec, InterleavedThreadsReconstructIndependently)
{
    OrderLog log;
    Ts64 c0 = 1;
    Ts64 c1 = 1;
    for (int i = 0; i < 30; ++i) {
        log.append(0, c0, 5);
        log.append(1, c1, 6);
        c0 += 9000;
        c1 += 15000;
    }
    const OrderLog decoded = decodeOrderLog(encodeOrderLog(log));
    for (std::size_t i = 0; i < log.size(); ++i)
        EXPECT_EQ(decoded.entries()[i].clock, log.entries()[i].clock);
}

TEST(LogCodec, RejectsUnboundedJumps)
{
    OrderLog log;
    log.append(0, 1, 10);
    log.append(0, 1 + kClockWindow, 10); // jump == window: ambiguous
    EXPECT_FALSE(isWireEncodable(log));
    EXPECT_DEATH(encodeOrderLog(log), "bounded-jump");
}

TEST(LogCodec, RealRecordingRoundTrips)
{
    // Record a real workload; its log must be wire-encodable and must
    // survive the round trip bit-exactly (this is the artifact a real
    // CORD chip would dump to memory).
    CordConfig cc;
    CordDetector recorder(cc);
    RunSetup rec;
    rec.workload = "fmm";
    rec.params.seed = 17;
    rec.detectors = {&recorder};
    const RunOutcome out = runWorkload(rec);
    ASSERT_TRUE(out.completed);
    const OrderLog &log = recorder.orderLog();
    ASSERT_GT(log.size(), 0u);
    ASSERT_TRUE(isWireEncodable(log));

    const OrderLog decoded = decodeOrderLog(encodeOrderLog(log));
    ASSERT_EQ(decoded.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(decoded.entries()[i].tid, log.entries()[i].tid);
        ASSERT_EQ(decoded.entries()[i].clock, log.entries()[i].clock)
            << "entry " << i;
        EXPECT_EQ(decoded.entries()[i].instrs, log.entries()[i].instrs);
    }
}

} // namespace
} // namespace cord

/**
 * @file
 * Many-core scaling study (docs/PERFORMANCE.md): CORD's execution-time
 * overhead and problem-detection rate as the machine grows from 4 to
 * 64 processors, under both snooping and directory coherence.
 *
 * The paper evaluates a 4-processor snooping SMP (Section 3.1) and
 * notes the directory extension in Section 2.5.  This benchmark
 * quantifies what that extension buys at scale:
 *
 *  - under snooping, every race check and timestamp fold is one
 *    broadcast on the single shared address bus, so CORD's traffic
 *    contends with all misses and the bus saturates as cores grow;
 *  - under directory coherence, checks become point-to-point probes of
 *    the home slice plus the *exact* sharer set (banked main-memory
 *    timestamps, one bank per slice), so the cost per check is
 *    1 + sharers slice transactions regardless of the core count.
 *
 * Each (coherence, cores) point reports the mean relative execution
 * time with CORD attached (Figure 11 metric, runPerf) and an injection
 * campaign's detection rates for CORD vs the vector-clock L2Cache
 * baseline.  Directory campaigns additionally run a broadcast-scan
 * CORD ablation (sharerProbes off) in the same runs and assert that
 * the sharer-set probe path detects *exactly* what the broadcast scan
 * does -- the point-to-point optimization must be detection-invariant.
 *
 * The analytic wire-cost curve puts the scalar-vs-vector argument in
 * the manifest too: a vector-clock message carries one 16-bit entry
 * per core (2N bytes) while CORD piggybacks a single 16-bit scalar,
 * independent of N (paper Section 2.2).
 *
 * Writes a `BENCH_scaling.json` run manifest (override with
 * --perf-out); CI's scaling smoke job records it into the
 * perf-trajectory db via `cordstat bench-history record` and gates on
 * it with `cordstat bench-history check`.
 *
 * Extra environment knob:
 *   CORD_CORES   comma-separated core counts (default 4,8,16,32,64)
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/manifest.h"

using namespace cord;

namespace
{

std::vector<unsigned>
coreList()
{
    const char *v = std::getenv("CORD_CORES");
    if (!v || !*v)
        return {4, 8, 16, 32, 64};
    std::vector<unsigned> cores;
    unsigned cur = 0;
    bool have = false;
    for (const char *p = v;; ++p) {
        if (*p >= '0' && *p <= '9') {
            cur = cur * 10 + static_cast<unsigned>(*p - '0');
            have = true;
        } else if (*p == ',' || *p == '\0') {
            if (have && cur > 0)
                cores.push_back(cur);
            cur = 0;
            have = false;
            if (*p == '\0')
                break;
        } else {
            cord_fatal("CORD_CORES expects comma-separated core "
                       "counts, got '", v, "'");
        }
    }
    cord_assert(!cores.empty(), "CORD_CORES named no core counts");
    return cores;
}

MachineConfig
machineFor(unsigned cores, CoherenceKind coherence)
{
    MachineConfig m;
    m.numCores = cores;
    m.coherence = coherence;
    m.computeScale = bench::envUnsigned("CORD_COMPUTE_SCALE", 256);
    return m;
}

/** One measured (coherence, cores) point of the study. */
struct ScalingPoint
{
    std::string coh;       //!< "snoop" | "dir"
    unsigned cores = 0;
    double meanRel = 0.0;  //!< mean CORD relative execution time
    double cordDetect = 0.0; //!< problem rate vs Ideal, all apps pooled
    double vcDetect = 0.0;
    unsigned manifested = 0;
    unsigned injections = 0;
    std::uint64_t raceCheckTraffic = 0;
    std::uint64_t memTsTraffic = 0;
};

ScalingPoint
measurePoint(CoherenceKind coherence, unsigned cores,
             const std::vector<std::string> &apps)
{
    ScalingPoint pt;
    pt.coh = coherence == CoherenceKind::Directory ? "dir" : "snoop";
    pt.cores = cores;

    const MachineConfig machine = machineFor(cores, coherence);

    // Overhead: Figure 11 metric per app, averaged.  One software
    // thread per processor -- the study scales the parallelism with
    // the machine, as the paper's SMP does.
    WorkloadParams params;
    params.numThreads = cores;
    params.scale = bench::envUnsigned("CORD_SCALE", 2);
    params.seed = bench::workloadSeed();
    CordConfig cord;
    double relSum = 0.0;
    for (const std::string &app : apps) {
        const PerfPoint p = runPerf(app, params, machine, cord);
        relSum += p.relative();
        pt.raceCheckTraffic += p.raceCheckTraffic;
        pt.memTsTraffic += p.memTsTraffic;
    }
    pt.meanRel = relSum / static_cast<double>(apps.size());

    // Detection: injection campaigns, all apps pooled.  On directory
    // machines a broadcast-scan CORD ablation rides the same runs so
    // the sharer-probe path can be checked against it exactly.
    std::vector<DetectorSpec> specs;
    specs.push_back(cordSpec(16, "CORD"));
    specs.push_back(vcL2CacheSpec());
    const bool directory = coherence == CoherenceKind::Directory;
    if (directory) {
        CordConfig bcast;
        bcast.sharerProbes = false;
        specs.push_back(cordSpecWith(bcast, "CORD-bcast"));
    }

    unsigned cordProblems = 0, vcProblems = 0;
    for (const std::string &app : apps) {
        CampaignConfig cfg = bench::campaignFor(app);
        cfg.machine = machine;
        cfg.params.numThreads = cores;
        const CampaignResult r = runCampaign(cfg, specs);
        pt.manifested += r.manifested;
        pt.injections += r.injections;
        cordProblems += r.problems.count("CORD")
                            ? r.problems.at("CORD")
                            : 0;
        vcProblems += r.problems.count("VC-L2Cache")
                          ? r.problems.at("VC-L2Cache")
                          : 0;
        if (directory) {
            auto problemsOf = [&r](const char *label) {
                const auto it = r.problems.find(label);
                return it == r.problems.end() ? 0u : it->second;
            };
            auto rawOf = [&r](const char *label) -> std::uint64_t {
                const auto it = r.rawRaces.find(label);
                return it == r.rawRaces.end() ? 0u : it->second;
            };
            cord_assert(problemsOf("CORD") == problemsOf("CORD-bcast"),
                        app, "@", cores, ": sharer-set probes found ",
                        problemsOf("CORD"),
                        " problems, broadcast scan ",
                        problemsOf("CORD-bcast"));
            cord_assert(rawOf("CORD") == rawOf("CORD-bcast"), app, "@",
                        cores,
                        ": probe/broadcast raw race counts diverge");
        }
    }
    if (pt.manifested > 0) {
        pt.cordDetect = static_cast<double>(cordProblems) / pt.manifested;
        pt.vcDetect = static_cast<double>(vcProblems) / pt.manifested;
    }
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    const bool json = bench::args().json;
    if (!json)
        std::printf("CORD reproduction -- many-core scaling study\n");

    RunManifest manifest;
    manifest.tool = "bench_scaling";
    manifest.seed = bench::envUnsigned("CORD_SEED", 1);
    manifest.setConfig("scale",
                       std::uint64_t(bench::envUnsigned("CORD_SCALE", 2)));
    manifest.setConfig("injections",
                       std::uint64_t(bench::envUnsigned("CORD_INJECTIONS",
                                                        30)));
    manifest.stampTime();

    TextTable t({"Coherence", "Cores", "CORD rel", "CORD detect",
                 "VC detect", "VC wire B/msg"});

    const auto apps = bench::appList();
    const auto cores = coreList();
    for (CoherenceKind coh :
         {CoherenceKind::Snooping, CoherenceKind::Directory}) {
        for (unsigned n : cores) {
            std::fprintf(stderr, "  [scaling] %s %u cores...\n",
                         coh == CoherenceKind::Directory ? "dir"
                                                        : "snoop",
                         n);
            const ScalingPoint pt = measurePoint(coh, n, apps);

            // A vector-clock piggyback carries one 16-bit entry per
            // core; CORD's scalar stays 2 bytes at every size.
            const std::uint64_t vcWire = 2ull * n;
            t.addRow({pt.coh, std::to_string(n),
                      TextTable::percent(pt.meanRel, 2),
                      TextTable::percent(pt.cordDetect, 1),
                      TextTable::percent(pt.vcDetect, 1),
                      std::to_string(vcWire)});

            StatRegistry reg;
            reg.set("relBp",
                    std::uint64_t(std::llround(pt.meanRel * 10000)));
            reg.set("cordDetectPct",
                    std::uint64_t(std::llround(pt.cordDetect * 100)));
            reg.set("vcDetectPct",
                    std::uint64_t(std::llround(pt.vcDetect * 100)));
            reg.set("manifested", std::uint64_t(pt.manifested));
            reg.set("injections", std::uint64_t(pt.injections));
            reg.set("raceCheckTraffic", pt.raceCheckTraffic);
            reg.set("memTsTraffic", pt.memTsTraffic);
            reg.set("cordWireBytesPerMsg", std::uint64_t(2));
            reg.set("vcWireBytesPerMsg", vcWire);
            manifest.metrics.add("scaling." + pt.coh + ".c" +
                                     std::to_string(n),
                                 reg);
        }
    }

    const std::string title =
        "Many-core scaling: CORD overhead and detection vs core count";
    if (json)
        t.printJson(title);
    else
        t.print(title);

    manifest.tables.push_back({title, t.headers(), t.rows()});
    const std::string outPath = bench::args().perfOutPath.empty()
                                    ? "BENCH_scaling.json"
                                    : bench::args().perfOutPath;
    manifest.wallSeconds = bench::elapsedSec();
    manifest.save(outPath);
    if (!json)
        std::printf("manifest: %s\n", outPath.c_str());
    return 0;
}

# Empty compiler generated dependencies file for cord_cpu.
# This may be replaced when dependencies are built.

/**
 * @file
 * Committed memory access events.
 *
 * The timing system commits memory operations in a global total order
 * (by tick, with deterministic tie-breaking) and publishes one MemEvent
 * per committed access.  All detectors -- CORD, the vector-clock
 * variants, and the Ideal happens-before detector -- consume this single
 * stream, so accuracy comparisons are made on identical interleavings
 * (DESIGN.md Section 5.1).
 */

#ifndef CORD_MEM_ACCESS_H
#define CORD_MEM_ACCESS_H

#include <cstdint>

#include "sim/types.h"

namespace cord
{

/** Kind of a committed memory access. */
enum class AccessKind : std::uint8_t
{
    DataRead,
    DataWrite,
    SyncRead,  //!< labelled synchronization load (paper Section 2.7.3)
    SyncWrite, //!< labelled synchronization store
};

/** True for the two write kinds. */
constexpr bool
isWriteKind(AccessKind k)
{
    return k == AccessKind::DataWrite || k == AccessKind::SyncWrite;
}

/** True for the two synchronization kinds. */
constexpr bool
isSyncKind(AccessKind k)
{
    return k == AccessKind::SyncRead || k == AccessKind::SyncWrite;
}

/**
 * One committed word access.  A successful atomic read-modify-write is
 * published as a SyncRead immediately followed by a SyncWrite with the
 * same tick and instruction count.
 */
struct MemEvent
{
    Tick tick = 0;
    ThreadId tid = 0;
    CoreId core = 0;
    Addr addr = 0;              //!< word-aligned address
    AccessKind kind = AccessKind::DataRead;
    std::uint64_t instrCount = 0; //!< thread instructions retired so far
    std::uint64_t value = 0;      //!< value read / value written

    bool isWrite() const { return isWriteKind(kind); }
    bool isSync() const { return isSyncKind(kind); }
};

} // namespace cord

#endif // CORD_MEM_ACCESS_H

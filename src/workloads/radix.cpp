/**
 * @file
 * radix -- parallel radix sort analog (paper input: 256K keys).
 * Barrier-separated digit rounds: local histogramming (private), a
 * lock-protected tree prefix combine, and a permutation phase that
 * scatters keys into a shared destination array at offsets derived
 * from the combined histogram.
 */

#include <vector>

#include "sim/rng.h"
#include "workloads/factories.h"
#include "workloads/patterns.h"
#include "workloads/workload.h"

namespace cord
{
namespace
{

class Radix final : public Workload
{
  public:
    const WorkloadMeta &
    meta() const override
    {
        static const WorkloadMeta m{
            "radix", "262144 keys",
            "2048*scale keys, radix-16 digits, 2 rounds",
            "round barriers + histogram-combine locks"};
        return m;
    }

    void
    setup(const WorkloadParams &p, AddressSpace &as) override
    {
        params_ = p;
        nKeys_ = 2048 * p.scale;
        src_ = as.allocSharedLineAligned(nKeys_, "keysA");
        dst_ = as.allocSharedLineAligned(nKeys_, "keysB");
        globalHist_ = as.allocSharedLineAligned(kRadix, "globalHist");
        histLock_ = as.allocSync("histLock");
        barrier_ = SyncRuntime::makeBarrier(as, p.numThreads);

        Rng rng(p.seed * 424243 + 17);
        keys_.resize(nKeys_);
        for (unsigned i = 0; i < nKeys_; ++i)
            keys_[i] = rng.below(1u << 16);

        // A bijective scatter permutation per round: destinations are
        // disjoint across threads (no races in a clean run) but land
        // interleaved through every thread's portion of the array.
        perm_.assign(kRounds, {});
        for (unsigned r = 0; r < kRounds; ++r) {
            perm_[r].resize(nKeys_);
            for (unsigned i = 0; i < nKeys_; ++i)
                perm_[r][i] = i;
            for (unsigned i = nKeys_ - 1; i > 0; --i) {
                const unsigned j =
                    static_cast<unsigned>(rng.below(i + 1));
                std::swap(perm_[r][i], perm_[r][j]);
            }
        }
    }

    Task<void>
    body(SyncRuntime &rt, ThreadCtx &ctx) override
    {
        return run(rt, ctx);
    }

  private:
    static constexpr unsigned kRadix = 16;
    static constexpr unsigned kRounds = 2;

    Task<void>
    run(SyncRuntime &rt, ThreadCtx &ctx)
    {
        const unsigned nt = params_.numThreads;
        const unsigned tid = ctx.tid;
        const unsigned chunk = nKeys_ / nt;
        const unsigned k0 = tid * chunk;
        const unsigned k1 = k0 + chunk;
        Addr from = src_;
        Addr to = dst_;

        // Round 0 initialization: each thread writes its key chunk.
        for (unsigned i = k0; i < k1; ++i)
            co_await opStore(from + i * kWordBytes, keys_[i]);
        co_await rt.barrier(ctx, barrier_);

        for (unsigned round = 0; round < kRounds; ++round) {
            const unsigned shift = 4 * round;

            // Local histogram of my chunk (reads my slice of `from`,
            // which other threads wrote in the previous round).
            std::vector<unsigned> local(kRadix, 0);
            for (unsigned i = k0; i < k1; ++i) {
                const std::uint64_t key =
                    (co_await opLoad(from + i * kWordBytes)).value;
                ++local[(key >> shift) % kRadix];
            }
            co_await opCompute(30);

            // Combine into the global histogram under the lock.
            co_await rt.lock(ctx, histLock_);
            for (unsigned d = 0; d < kRadix; ++d) {
                const Addr a = globalHist_ + d * kWordBytes;
                const std::uint64_t v = (co_await opLoad(a)).value;
                co_await opStore(a, v + local[d]);
            }
            co_await rt.unlock(ctx, histLock_);
            co_await rt.barrier(ctx, barrier_);

            // Permute: read the global histogram (written by all
            // threads), then scatter my keys through the round's
            // permutation -- writes land interleaved with other
            // threads' destination lines.
            std::uint64_t base = 0;
            for (unsigned d = 0; d < kRadix; ++d)
                base += (co_await opLoad(globalHist_ + d * kWordBytes))
                            .value;
            for (unsigned i = k0; i < k1; ++i) {
                const std::uint64_t key =
                    (co_await opLoad(from + i * kWordBytes)).value;
                const unsigned pos = perm_[round][i];
                co_await opStore(to + pos * kWordBytes,
                                 key + (base & 0xf));
            }
            co_await rt.barrier(ctx, barrier_);

            // Reset the global histogram for the next round (thread 0).
            if (tid == 0)
                co_await patterns::fillWords(globalHist_, kRadix, 0);
            co_await rt.barrier(ctx, barrier_);
            std::swap(from, to);
        }
    }

    WorkloadParams params_;
    unsigned nKeys_ = 0;
    Addr src_ = 0;
    Addr dst_ = 0;
    Addr globalHist_ = 0;
    Addr histLock_ = 0;
    BarrierVars barrier_;
    std::vector<std::uint64_t> keys_;
    std::vector<std::vector<unsigned>> perm_;
};

} // namespace

std::unique_ptr<Workload>
makeRadix()
{
    return std::make_unique<Radix>();
}

} // namespace cord

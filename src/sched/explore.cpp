#include "sched/explore.h"

#include <memory>
#include <set>
#include <utility>

#include "cord/cord_detector.h"
#include "cord/ideal_detector.h"
#include "harness/exec.h"
#include "sim/logging.h"

namespace cord
{

namespace
{

/** Stamp replay metadata on a freshly recorded log. */
void
stampLog(ScheduleLog &log, const ExploreSpec &spec, unsigned schedIdx,
         std::uint64_t signature)
{
    const SchedKind kind =
        (schedIdx == 0 || spec.sched.kind == SchedKind::Baseline)
            ? SchedKind::Baseline
            : spec.sched.kind;
    log.policyKind = static_cast<std::uint64_t>(kind);
    log.seed = kind == SchedKind::Baseline
                   ? 0
                   : scheduleSeed(spec.seed, 0, schedIdx);
    log.numThreads = spec.params.numThreads;
    log.signature = signature;
}

} // namespace

ScheduleRun
runOneSchedule(const ExploreSpec &spec, unsigned index,
               SchedulePolicy &policy, ScheduleLog *rec)
{
    RemoveOneInstance filter(spec.pick);
    IdealDetector ideal(spec.params.numThreads);
    TraceRecorder recorder;
    std::unique_ptr<CordDetector> cord;
    if (spec.withCord) {
        CordConfig cc;
        cc.d = spec.cordD;
        cc.numCores = spec.machine.numCores;
        cc.numThreads = spec.params.numThreads;
        cord = std::make_unique<CordDetector>(cc);
    }

    RunSetup setup;
    setup.workload = spec.workload;
    setup.params = spec.params;
    setup.machine = spec.machine;
    if (spec.haveInjection)
        setup.filter = &filter;
    setup.maxTicks = spec.maxTicks;
    setup.simShards = spec.simShards;
    setup.detectors.push_back(&ideal);
    if (cord)
        setup.detectors.push_back(cord.get());
    if (spec.recordTrace)
        setup.detectors.push_back(&recorder);
    setup.sched = &policy;
    setup.recordSched = rec;

    const RunOutcome out = runWorkload(setup);

    ScheduleRun r;
    r.index = index;
    r.completed = out.completed;
    r.ticks = out.ticks;
    r.signature = out.interleavingSignature;
    r.idealRacePairs = ideal.races().pairs();
    if (cord)
        r.cordRacePairs = cord->races().pairs();
    r.idealRacyWords.assign(ideal.races().words().begin(),
                            ideal.races().words().end());
    r.readChecksums = out.readChecksums;
    if (spec.recordTrace) {
        auto trace = std::make_shared<DecodedTrace>();
        trace->events = recorder.events();
        trace->threadEnds = recorder.threadEnds();
        r.trace = std::move(trace);
    }
    return r;
}

ExploreResult
exploreSchedules(const ExploreSpec &spec)
{
    cord_assert(spec.schedules >= 1,
                "an exploration needs at least one schedule");
    ExploreResult res;
    res.runs.resize(spec.schedules);

    // Baseline schedule first (sequentially): it anchors the sample and
    // calibrates the watchdog the perturbed schedules run under.
    {
        BaselinePolicy base;
        ScheduleLog rec;
        ScheduleRun r = runOneSchedule(spec, 0, base, &rec);
        stampLog(rec, spec, 0, r.signature);
        r.log = std::move(rec);
        res.runs[0] = std::move(r);
    }

    ExploreSpec rest = spec;
    if (rest.maxTicks == 0 && res.runs[0].completed)
        rest.maxTicks = res.runs[0].ticks * 50 + 1000000;
    rest.recordTrace = false; // only the baseline trace is retained

    auto runOne = [&](std::size_t j) {
        const unsigned s = static_cast<unsigned>(j) + 1;
        auto policy = makeSchedulePolicy(spec.sched, spec.seed, 0, s);
        ScheduleLog rec;
        ScheduleRun r = runOneSchedule(rest, s, *policy, &rec);
        stampLog(rec, spec, s, r.signature);
        r.log = std::move(rec);
        return r;
    };
    auto mergeOne = [&](std::size_t j, ScheduleRun &&r) {
        res.runs[j + 1] = std::move(r);
    };
    parallelForOrdered(spec.schedules - 1, spec.jobs, runOne, mergeOne);

    std::set<std::uint64_t> sigs;
    unsigned cum = 0;
    for (const ScheduleRun &r : res.runs) {
        if (r.completed) {
            ++res.completedRuns;
            sigs.insert(r.signature);
            if (r.idealRacePairs > 0)
                ++cum;
        } else {
            ++res.timeouts;
        }
        res.racingCum.push_back(cum);
    }
    res.racingSchedules = cum;
    res.distinctSignatures = static_cast<unsigned>(sigs.size());
    return res;
}

} // namespace cord

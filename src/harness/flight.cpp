#include "harness/flight.h"

#include <chrono>

#include "obs/json.h"
#include "sim/logging.h"

namespace cord
{

namespace
{

using Clock = std::chrono::steady_clock;

// One epoch per process is enough: event "t" fields are seconds since
// the recorder was opened, used by `cordstat watch` for liveness.
Clock::time_point g_openEpoch;

double
secondsSinceOpen()
{
    return std::chrono::duration<double>(Clock::now() - g_openEpoch)
        .count();
}

} // namespace

FlightRecorder::FlightRecorder(const std::string &path,
                               std::uint64_t maxBytes)
    : maxBytes_(maxBytes ? maxBytes : kDefaultMaxBytes)
{
    f_ = std::fopen(path.c_str(), "wb");
    if (!f_)
        cord_warn("cannot open heartbeat file ", path,
                  "; campaign continues without one");
    g_openEpoch = Clock::now();
}

FlightRecorder::~FlightRecorder()
{
    if (f_)
        std::fclose(f_);
}

void
FlightRecorder::emit(const std::string &line, bool mandatory)
{
    if (!f_)
        return;
    if (!mandatory && bytes_ + line.size() + 1 > maxBytes_) {
        ++dropped_;
        return;
    }
    std::fwrite(line.data(), 1, line.size(), f_);
    std::fputc('\n', f_);
    // Crash-safety: every line reaches the OS before the next run is
    // reported, so a killed campaign leaves a readable record.
    std::fflush(f_);
    bytes_ += line.size() + 1;
    ++written_;
}

void
FlightRecorder::campaignBegin(const std::string &workload, unsigned runs,
                              unsigned injections, unsigned schedules,
                              unsigned jobs)
{
    std::lock_guard<std::mutex> lk(mu_);
    JsonWriter w;
    w.beginObject();
    w.field("schema", kHeartbeatSchema);
    w.field("event", "campaign_begin");
    w.field("seq", seq_++);
    w.field("t", secondsSinceOpen());
    w.field("workload", workload);
    w.field("runs", runs);
    w.field("injections", injections);
    w.field("schedules", schedules);
    w.field("jobs", jobs);
    w.endObject();
    emit(w.str(), /*mandatory=*/true);
}

void
FlightRecorder::runStarted(unsigned runIndex, unsigned injection,
                           unsigned schedule)
{
    std::lock_guard<std::mutex> lk(mu_);
    JsonWriter w;
    w.beginObject();
    w.field("event", "run_started");
    w.field("seq", seq_++);
    w.field("t", secondsSinceOpen());
    w.field("run", runIndex);
    w.field("injection", injection);
    w.field("schedule", schedule);
    w.endObject();
    emit(w.str(), /*mandatory=*/false);
}

void
FlightRecorder::runFinished(unsigned runIndex, unsigned injection,
                            unsigned schedule, bool completed,
                            bool timedOut, double wallSeconds,
                            std::uint64_t ticks,
                            std::uint64_t idealRaces)
{
    std::lock_guard<std::mutex> lk(mu_);
    JsonWriter w;
    w.beginObject();
    w.field("event", "run_finished");
    w.field("seq", seq_++);
    w.field("t", secondsSinceOpen());
    w.field("run", runIndex);
    w.field("injection", injection);
    w.field("schedule", schedule);
    w.field("completed", completed);
    w.field("timedOut", timedOut);
    w.field("wallSeconds", wallSeconds);
    w.field("ticks", ticks);
    w.field("idealRaces", idealRaces);
    w.endObject();
    emit(w.str(), /*mandatory=*/false);
}

void
FlightRecorder::campaignEnd(unsigned completedRuns, unsigned timedOutRuns)
{
    std::lock_guard<std::mutex> lk(mu_);
    JsonWriter w;
    w.beginObject();
    w.field("event", "campaign_end");
    w.field("seq", seq_++);
    w.field("t", secondsSinceOpen());
    w.field("completedRuns", completedRuns);
    w.field("timedOutRuns", timedOutRuns);
    w.field("droppedEvents", dropped_);
    w.endObject();
    emit(w.str(), /*mandatory=*/true);
}

} // namespace cord

/**
 * @file
 * Structured findings for offline analysis (cordlint).
 *
 * Every check contributes zero or more findings to a LintReport; the
 * report also carries named numeric metrics (coverage ratios, entry
 * counts) so that results are machine-consumable.  Rendering is
 * deliberately dependency-free: plain text for humans, a small JSON
 * emitter for tooling.
 */

#ifndef CORD_ANALYSIS_FINDINGS_H
#define CORD_ANALYSIS_FINDINGS_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace cord
{

/** How bad one finding is. */
enum class Severity
{
    Info,    //!< noteworthy but expected (e.g. coverage below 100%)
    Warning, //!< suspicious; the artifact may still be usable
    Error,   //!< invariant violation; the artifact is corrupt or wrong
};

const char *severityName(Severity s);

/** One result of one analysis check. */
struct Finding
{
    std::string check; //!< dotted check identifier, e.g. "log.monotone"
    Severity severity = Severity::Info;
    std::string message;
};

/** Accumulates findings and metrics across all checks of one run. */
class LintReport
{
  public:
    void add(std::string check, Severity sev, std::string message);

    void
    info(std::string check, std::string message)
    {
        add(std::move(check), Severity::Info, std::move(message));
    }

    void
    warning(std::string check, std::string message)
    {
        add(std::move(check), Severity::Warning, std::move(message));
    }

    void
    error(std::string check, std::string message)
    {
        add(std::move(check), Severity::Error, std::move(message));
    }

    /** Record that a check ran to completion (even if it found nothing). */
    void markChecked(const std::string &check);

    /** Named numeric result, e.g. "audit.pairCoverage". */
    void setMetric(const std::string &name, double value);

    const std::vector<Finding> &findings() const { return findings_; }
    const std::vector<std::string> &checksRun() const { return checks_; }
    const std::map<std::string, double> &metrics() const { return metrics_; }

    std::size_t count(Severity s) const;
    std::size_t errors() const { return count(Severity::Error); }
    std::size_t warnings() const { return count(Severity::Warning); }

    /** True when no error- or warning-level findings were recorded. */
    bool clean() const { return errors() == 0 && warnings() == 0; }

    /** Human-readable multi-line report. */
    std::string renderText() const;

    /** Machine-readable report (a single JSON object). */
    std::string renderJson() const;

  private:
    std::vector<Finding> findings_;
    std::vector<std::string> checks_;
    std::map<std::string, double> metrics_;
};

} // namespace cord

#endif // CORD_ANALYSIS_FINDINGS_H

/**
 * @file
 * Table 1 reproduction: applications evaluated and their input sets.
 *
 * Prints the paper's input set next to the scaled analog this
 * repository runs, plus measured run statistics (shared footprint,
 * committed accesses, removable synchronization instances) from one
 * clean run per application.
 */

#include <cstdio>

#include "bench_common.h"
#include "harness/runner.h"

using namespace cord;

int
main()
{
    std::printf("CORD reproduction -- Table 1: applications and inputs\n");
    TextTable t({"App", "Paper input", "Our input (analog)",
                 "Sync idiom", "Footprint", "Accesses", "SyncInst"});
    for (const std::string &app : bench::appList()) {
        auto w = makeWorkload(app);
        RunSetup setup;
        setup.workload = app;
        setup.params.numThreads = 4;
        setup.params.scale = bench::envUnsigned("CORD_SCALE", 2);
        setup.params.seed = 7;
        const RunOutcome out = runWorkload(setup);
        char foot[32];
        std::snprintf(foot, sizeof(foot), "%.1fKB",
                      out.footprintWords * 4.0 / 1024.0);
        t.addRow({app, w->meta().paperInput, w->meta().ourInput,
                  w->meta().syncIdiom, foot,
                  std::to_string(out.accesses),
                  std::to_string(out.totalInstances())});
    }
    t.print("Table 1: applications evaluated and their input sets");
    return 0;
}

#include "harness/table.h"

#include <cstdio>

#include "obs/json.h"
#include "obs/manifest.h"
#include "sim/logging.h"

namespace cord
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cord_assert(cells.size() == headers_.size(),
                "row width ", cells.size(), " != header width ",
                headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::percent(double ratio, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
    return buf;
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

void
TextTable::print(const std::string &title) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (row[c].size() > width[c])
                width[c] = row[c].size();
        }
    }

    std::printf("\n== %s ==\n", title.c_str());
    auto printRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::printf("%s%-*s", c ? "  " : "",
                        static_cast<int>(width[c]), cells[c].c_str());
        std::printf("\n");
    };
    printRow(headers_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    for (std::size_t i = 0; i + 2 < total; ++i)
        std::printf("-");
    std::printf("\n");
    for (const auto &row : rows_)
        printRow(row);
    std::fflush(stdout);
}

std::string
TextTable::renderJson(const std::string &title) const
{
    JsonWriter w(/*pretty=*/true);
    writeTableJson(w, title, headers_, rows_);
    return w.str();
}

void
TextTable::printJson(const std::string &title) const
{
    std::printf("%s\n", renderJson(title).c_str());
    std::fflush(stdout);
}

} // namespace cord

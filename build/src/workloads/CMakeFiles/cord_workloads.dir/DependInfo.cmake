
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/barnes.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/barnes.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/barnes.cpp.o.d"
  "/root/repo/src/workloads/cholesky.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/cholesky.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/cholesky.cpp.o.d"
  "/root/repo/src/workloads/fft.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/fft.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/fft.cpp.o.d"
  "/root/repo/src/workloads/fmm.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/fmm.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/fmm.cpp.o.d"
  "/root/repo/src/workloads/lu.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/lu.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/lu.cpp.o.d"
  "/root/repo/src/workloads/ocean.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/ocean.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/ocean.cpp.o.d"
  "/root/repo/src/workloads/radiosity.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/radiosity.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/radiosity.cpp.o.d"
  "/root/repo/src/workloads/radix.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/radix.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/radix.cpp.o.d"
  "/root/repo/src/workloads/raytrace.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/raytrace.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/raytrace.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/volrend.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/volrend.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/volrend.cpp.o.d"
  "/root/repo/src/workloads/water_n2.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/water_n2.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/water_n2.cpp.o.d"
  "/root/repo/src/workloads/water_sp.cpp" "src/workloads/CMakeFiles/cord_workloads.dir/water_sp.cpp.o" "gcc" "src/workloads/CMakeFiles/cord_workloads.dir/water_sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cord_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

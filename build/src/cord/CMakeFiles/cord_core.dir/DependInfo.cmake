
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cord/cord_detector.cpp" "src/cord/CMakeFiles/cord_core.dir/cord_detector.cpp.o" "gcc" "src/cord/CMakeFiles/cord_core.dir/cord_detector.cpp.o.d"
  "/root/repo/src/cord/ideal_detector.cpp" "src/cord/CMakeFiles/cord_core.dir/ideal_detector.cpp.o" "gcc" "src/cord/CMakeFiles/cord_core.dir/ideal_detector.cpp.o.d"
  "/root/repo/src/cord/log_codec.cpp" "src/cord/CMakeFiles/cord_core.dir/log_codec.cpp.o" "gcc" "src/cord/CMakeFiles/cord_core.dir/log_codec.cpp.o.d"
  "/root/repo/src/cord/replay.cpp" "src/cord/CMakeFiles/cord_core.dir/replay.cpp.o" "gcc" "src/cord/CMakeFiles/cord_core.dir/replay.cpp.o.d"
  "/root/repo/src/cord/vc_detector.cpp" "src/cord/CMakeFiles/cord_core.dir/vc_detector.cpp.o" "gcc" "src/cord/CMakeFiles/cord_core.dir/vc_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cord_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

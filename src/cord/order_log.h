/**
 * @file
 * The execution-order log (paper Section 2.7.1).
 *
 * Whenever a thread's logical clock changes, an entry is appended
 * recording the *previous* clock value, the thread ID, and the number
 * of instructions the thread executed while holding that clock value.
 * The wire format is eight bytes per entry (16-bit thread ID, 16-bit
 * clock, 32-bit instruction count); we additionally keep the
 * epoch-extended 64-bit clock so replay can totally order entries
 * across 16-bit wraparounds (the hardware log writer can reconstruct
 * the same by counting wraps per thread).
 */

#ifndef CORD_CORD_ORDER_LOG_H
#define CORD_CORD_ORDER_LOG_H

#include <cstdint>
#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace cord
{

/** One order-log record: a fragment of one thread's execution. */
struct OrderLogEntry
{
    ThreadId tid = 0;
    Ts64 clock = 0;           //!< logical time of this fragment
    std::uint64_t instrs = 0; //!< instructions executed at this clock

    /** 16-bit wire clock, as the hardware would store it. */
    Ts16 wireClock() const { return static_cast<Ts16>(clock); }
};

/**
 * Per-run execution order log.
 *
 * Entries are appended in commit order and are already sorted by
 * (clock, append order) per thread; replay sorts globally by clock.
 */
class OrderLog
{
  public:
    /** Wire size of one entry (paper: eight bytes). */
    static constexpr std::size_t kEntryWireBytes = 8;

    /**
     * Append a fragment: thread @p tid executed @p instrs instructions
     * while its clock was @p clock.  Zero-instruction fragments (two
     * clock updates with no instruction in between) are elided, which
     * the hardware achieves by overwriting the pending entry.
     */
    void
    append(ThreadId tid, Ts64 clock, std::uint64_t instrs)
    {
        if (instrs == 0)
            return;
        cord_assert(instrs <= 0xffffffffULL,
                    "instruction count overflows the 32-bit wire field; "
                    "the hardware splits such fragments (Section 2.7.1)");
        entries_.push_back(OrderLogEntry{tid, clock, instrs});
    }

    const std::vector<OrderLogEntry> &entries() const { return entries_; }

    std::size_t size() const { return entries_.size(); }

    /** Size of the log in its 8-byte wire format. */
    std::size_t wireBytes() const { return entries_.size() * kEntryWireBytes; }

    void clear() { entries_.clear(); }

  private:
    std::vector<OrderLogEntry> entries_;
};

/**
 * Per-thread helper that tracks the current fragment and emits log
 * entries on clock changes.  Detector implementations own one per
 * thread.
 */
class OrderLogWriter
{
  public:
    OrderLogWriter() = default;

    /** Bind to the log and set the thread's initial clock. */
    void
    begin(OrderLog *log, ThreadId tid, Ts64 initialClock)
    {
        log_ = log;
        tid_ = tid;
        clock_ = initialClock;
        fragmentStart_ = 0;
    }

    Ts64 clock() const { return clock_; }

    /**
     * The thread's clock changes to @p newClock; the boundary lies at
     * @p instrBoundary retired instructions (instructions before the
     * boundary executed with the old clock).
     */
    void
    changeClock(Ts64 newClock, std::uint64_t instrBoundary)
    {
        cord_assert(newClock > clock_, "clocks only move forward: ",
                    newClock, " vs ", clock_);
        cord_assert(instrBoundary >= fragmentStart_,
                    "instruction boundary went backwards");
        if (log_)
            log_->append(tid_, clock_, instrBoundary - fragmentStart_);
        clock_ = newClock;
        fragmentStart_ = instrBoundary;
    }

    /** Flush the final fragment at thread end. */
    void
    finish(std::uint64_t totalInstrs)
    {
        if (log_ && totalInstrs > fragmentStart_)
            log_->append(tid_, clock_, totalInstrs - fragmentStart_);
        fragmentStart_ = totalInstrs;
    }

  private:
    OrderLog *log_ = nullptr;
    ThreadId tid_ = 0;
    Ts64 clock_ = 1;
    std::uint64_t fragmentStart_ = 0;
};

} // namespace cord

#endif // CORD_CORD_ORDER_LOG_H

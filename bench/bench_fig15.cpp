/**
 * @file
 * Figure 15 reproduction: raw data race detection rate with limited
 * access histories (InfCache / L2Cache / L1Cache, all vector clocks),
 * relative to Ideal.
 *
 * Paper finding: even unlimited caches with only two timestamps per
 * line miss 18% of raw races; L2Cache and L1Cache miss most raw races
 * -- raw detection is what the paper's buffer limits sacrifice.
 */

#include <cstdio>

#include "bench_common.h"

using namespace cord;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    std::printf("CORD reproduction -- Figure 15\n");
    const auto results = bench::runAllCampaigns(
        {vcInfCacheSpec(), vcL2CacheSpec(), vcL1CacheSpec()});
    TextTable t({"App", "IdealRaces", "InfCache", "L2Cache", "L1Cache"});
    for (const auto &[app, r] : results) {
        t.addRow({app, std::to_string(r.idealRawRaces),
                  TextTable::percent(r.rawRateVsIdeal("VC-InfCache")),
                  TextTable::percent(r.rawRateVsIdeal("VC-L2Cache")),
                  TextTable::percent(r.rawRateVsIdeal("VC-L1Cache"))});
    }
    auto avg = [&](const char *label) {
        return bench::averageOver(results,
                                  [&](const CampaignResult &r) {
                                      return r.rawRateVsIdeal(label);
                                  });
    };
    t.addRow({"Average", "", TextTable::percent(avg("VC-InfCache")),
              TextTable::percent(avg("VC-L2Cache")),
              TextTable::percent(avg("VC-L1Cache"))});
    t.print("Figure 15: raw race detection vs Ideal with limited "
            "access histories (vector clocks)");
    return 0;
}

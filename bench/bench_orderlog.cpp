/**
 * @file
 * Section 3.3 reproduction: order-recording log size and replay
 * accuracy.
 *
 * Paper finding: "Our order logs are very compact and in all
 * applications require less than 1MB for the entire execution" and
 * "the entire execution can be accurately replayed" (verified with and
 * without injections).  This binary records every application, checks
 * log size per million instructions, then replays each run under an
 * adversarial machine configuration and verifies the per-thread read
 * value checksums match.
 */

#include <cstdio>

#include "bench_common.h"
#include "cord/replay.h"
#include "inject/injector.h"

using namespace cord;

namespace
{

struct Row
{
    std::string app;
    std::size_t logBytes = 0;
    double bytesPerKiloInstr = 0.0;
    bool replayOk = false;
    bool injectedReplayOk = false;
};

bool
replayMatches(const std::string &app, const WorkloadParams &params,
              const OrderLog &log, const RunOutcome &recOut,
              SyncInstanceFilter *filter)
{
    RunSetup rep;
    rep.workload = app;
    rep.params = params;
    rep.filter = filter;
    rep.machine.memoryLatency = 80;
    rep.machine.cacheToCacheLatency = 4;
    rep.machine.l2HitLatency = 2;
    ReplayGate gate(log, params.numThreads);
    rep.gate = &gate;
    rep.maxTicks = recOut.ticks * 200 + 10000000;
    const RunOutcome repOut = runWorkload(rep);
    if (!repOut.completed || gate.overrunInstrs() != 0)
        return false;
    for (unsigned t = 0; t < params.numThreads; ++t) {
        if (repOut.readChecksums[t] != recOut.readChecksums[t])
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    std::printf("CORD reproduction -- Section 3.3 (order log + replay)\n");
    TextTable t({"App", "LogEntries", "LogBytes", "B/kInstr",
                 "CleanReplay", "InjectedReplay"});
    bool allOk = true;
    // Order-log replay needs timing-independent instruction streams;
    // the server family's open-loop pacer reads the simulated clock,
    // so it replays via schedule logs only (docs/WORKLOADS.md).
    std::vector<std::string> apps;
    for (const std::string &app : bench::appList()) {
        if (workloadFamily(app) == "server")
            std::fprintf(stderr,
                         "  [orderlog] %s: skipped (server family "
                         "replays via schedule logs)\n", app.c_str());
        else
            apps.push_back(app);
    }
    struct AppRow
    {
        std::vector<std::string> cells;
        bool ok = true;
    };
    parallelForOrdered(
        apps.size(), bench::args().jobs,
        [&](std::size_t idx) {
            const std::string &app = apps[idx];
            std::fprintf(stderr, "  [orderlog] %s...\n", app.c_str());
            WorkloadParams params;
            params.numThreads = kDefaultNumThreads;
            params.scale = bench::envUnsigned("CORD_SCALE", 2);
            params.seed = Rng::deriveSeed(bench::baseSeed(),
                                          bench::kBenchOrderlogSeedTag);

            // Clean recording + replay.
            CordConfig cc;
            CordDetector recorder(cc);
            RunSetup rec;
            rec.workload = app;
            rec.params = params;
            rec.detectors = {&recorder};
            const RunOutcome recOut = runWorkload(rec);
            std::uint64_t instrs = 0;
            for (auto i : recOut.instrs)
                instrs += i;
            const bool cleanOk = replayMatches(app, params,
                                               recorder.orderLog(),
                                               recOut, nullptr);

            // Injected recording + replay (removal of one sync
            // instance).
            RemoveOneInstance filter({1, 2});
            CordDetector recorder2(cc);
            RunSetup rec2;
            rec2.workload = app;
            rec2.params = params;
            rec2.filter = &filter;
            rec2.detectors = {&recorder2};
            rec2.maxTicks = recOut.ticks * 25 + 1000000;
            const RunOutcome recOut2 = runWorkload(rec2);
            bool injOk = true;
            if (recOut2.completed) {
                RemoveOneInstance filter2({1, 2});
                injOk = replayMatches(app, params, recorder2.orderLog(),
                                      recOut2, &filter2);
            }

            AppRow row;
            row.ok = cleanOk && injOk;
            row.cells = {app, std::to_string(recorder.orderLog().size()),
                         std::to_string(recorder.orderLog().wireBytes()),
                         TextTable::num(recorder.orderLog().wireBytes() *
                                            1000.0 /
                                            (instrs ? instrs : 1),
                                        1),
                         cleanOk ? "OK" : "FAIL",
                         injOk ? "OK" : "FAIL"};
            return row;
        },
        [&](std::size_t, AppRow &&row) {
            allOk = allOk && row.ok;
            t.addRow(row.cells);
        });
    t.print("Order log size and deterministic replay "
            "(paper: <1MB per run, fully accurate replay)");
    std::printf("%s\n", allOk ? "All replays verified."
                              : "REPLAY VERIFICATION FAILED");
    return allOk ? 0 : 1;
}

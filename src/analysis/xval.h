/**
 * @file
 * Cross-validation of the race predictor against schedule exploration
 * (cordlint mode "xval").
 *
 * The predictor's promise is that one recorded baseline trace is
 * enough to flag the races a *different* schedule of the same run
 * would manifest.  This module puts a number on that: it explores M
 * schedules of one configuration (sched/explore.h, PR 4), collects
 * the union of racy words the Ideal detector actually saw manifest,
 * predicts races from the baseline schedule's trace alone, and checks
 *
 *     predicted racy words  ⊇  manifested racy words.
 *
 * A hold means every race the exploration could surface was already
 * visible to the predictor without running a single extra schedule; a
 * miss names the escaped words so the workload/seed can be triaged.
 * CI gates on the superset holding for the curated workload set (see
 * .github/workflows/ci.yml job "predict").
 */

#ifndef CORD_ANALYSIS_XVAL_H
#define CORD_ANALYSIS_XVAL_H

#include <set>
#include <vector>

#include "analysis/findings.h"
#include "analysis/predict.h"
#include "sched/explore.h"

namespace cord
{

/** One cross-validation: an exploration plus prediction knobs. */
struct XvalSpec
{
    /** Configuration and schedule sample; recordTrace is forced on
     *  (the baseline trace is what the predictor consumes). */
    ExploreSpec explore;

    /** Prediction knobs.  Leave sampleRate at 1 for the superset
     *  guarantee -- a sampled predictor skips words on purpose. */
    PredictOptions predict;
};

/**
 * Why a manifested racy word escaped the baseline-trace predictor.
 * Every kind is a *fundamental single-trace limit* -- the information
 * the predictor would have needed is simply absent from the baseline
 * schedule's trace -- not a predictor bug (a word whose baseline
 * accesses contain a W-unordered conflicting pair is always predicted,
 * by the soundness argument in predict.h).
 */
enum class EscapeKind : std::uint8_t
{
    /** The word was never accessed in the baseline schedule at all
     *  (e.g. a branch only a different interleaving takes). */
    UnobservedWord,

    /** Only one thread touched the word in the baseline, so no
     *  cross-thread pair exists to predict from. */
    SingleThreadInBaseline,

    /** Multiple threads touched the word, but every conflicting pair
     *  (if any) was ordered by the baseline's *observed* reads-from
     *  synchronization -- e.g. two critical sections whose lock
     *  acquisition order flips in another schedule (the volrend
     *  escape). */
    OrderedInBaseline,
};

/** Stable lowercase name of an escape kind (for findings/JSON). */
const char *escapeKindName(EscapeKind k);

/**
 * One escaped word with its classification witness: what the baseline
 * trace actually contained for the word, and the first explored
 * schedule in which the Ideal detector saw it race.
 */
struct XvalEscape
{
    Addr word = 0;
    EscapeKind kind = EscapeKind::UnobservedWord;
    unsigned firstSchedule = 0;         //!< first manifesting schedule
    std::uint64_t baselineAccesses = 0; //!< accesses to the word
    std::uint64_t baselineWrites = 0;   //!< of which writes
    unsigned baselineThreads = 0;       //!< distinct accessing threads
};

/** Outcome of one cross-validation. */
struct XvalResult
{
    unsigned schedules = 0;   //!< schedules explored
    unsigned completed = 0;   //!< of which ran to completion
    bool baselineCompleted = false;

    std::uint64_t predictedPairs = 0;
    std::set<Addr> predictedWords;  //!< from the baseline trace alone
    std::set<Addr> manifestedWords; //!< union of Ideal's racy words

    /** Manifested words the predictor missed (empty = superset holds). */
    std::vector<Addr> missedWords;

    /** Per-miss classification, parallel to missedWords. */
    std::vector<XvalEscape> escapes;

    bool superset() const { return missedWords.empty(); }
};

/** Explore, predict from the baseline trace, compare. */
XvalResult runXval(const XvalSpec &spec);

/**
 * Render a cross-validation into lint findings and metrics.  Escapes
 * are reported as structured warnings carrying the classification
 * witness; @p failOnEscape promotes them to errors (the strict gate CI
 * applies to its curated workload set).
 */
void reportXval(const XvalResult &r, LintReport &report,
                bool failOnEscape = false);

} // namespace cord

#endif // CORD_ANALYSIS_XVAL_H

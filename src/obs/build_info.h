/**
 * @file
 * Build stamp for run manifests: the git revision and build type are
 * captured at CMake configure time (src/obs/CMakeLists.txt) so every
 * artifact records which code produced it.
 */

#ifndef CORD_OBS_BUILD_INFO_H
#define CORD_OBS_BUILD_INFO_H

namespace cord
{

/** Short git hash of the configured source tree ("unknown" outside a
 *  git checkout); "-dirty" is appended when the tree had local edits. */
const char *buildGitHash();

/** CMake build type ("RelWithDebInfo", "Debug", ...). */
const char *buildType();

} // namespace cord

#endif // CORD_OBS_BUILD_INFO_H

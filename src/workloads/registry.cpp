#include "workloads/workload.h"

#include "sim/logging.h"
#include "workloads/factories.h"

namespace cord
{

namespace
{

struct RegistryEntry
{
    const char *name;
    std::unique_ptr<Workload> (*factory)();
};

// Table 1 order.
const RegistryEntry kRegistry[] = {
    {"barnes", makeBarnes},       {"cholesky", makeCholesky},
    {"fft", makeFft},             {"fmm", makeFmm},
    {"lu", makeLu},               {"ocean", makeOcean},
    {"radiosity", makeRadiosity}, {"radix", makeRadix},
    {"raytrace", makeRaytrace},   {"volrend", makeVolrend},
    {"water-n2", makeWaterN2},    {"water-sp", makeWaterSp},
};

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    for (const auto &e : kRegistry) {
        if (name == e.name)
            return e.factory();
    }
    cord_fatal("unknown workload '", name, "'");
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &e : kRegistry)
            v.emplace_back(e.name);
        return v;
    }();
    return names;
}

} // namespace cord

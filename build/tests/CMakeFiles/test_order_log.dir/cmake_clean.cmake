file(REMOVE_RECURSE
  "CMakeFiles/test_order_log.dir/order_log_test.cpp.o"
  "CMakeFiles/test_order_log.dir/order_log_test.cpp.o.d"
  "test_order_log"
  "test_order_log.pdb"
  "test_order_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_order_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_directory"
  "../bench/bench_directory.pdb"
  "CMakeFiles/bench_directory.dir/bench_directory.cpp.o"
  "CMakeFiles/bench_directory.dir/bench_directory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Schedule replay: drive the execution engine from a recorded
 * ScheduleLog instead of a live policy.
 *
 * The engine's scheduling is a pure function of the decision sequence
 * (docs/SCHEDULING.md): if every query is answered with the recorded
 * value, the replayed run takes exactly the recorded interleaving, so
 * the query sequence itself also matches the recording -- any
 * mismatch therefore indicates divergence (wrong workload, seed,
 * machine config, or a truncated/corrupt log) and is counted instead
 * of trusted.  A faithful replay ends with totalDivergence() == 0:
 * no mismatched answers and no unconsumed decisions.
 */

#ifndef CORD_SCHED_REPLAY_H
#define CORD_SCHED_REPLAY_H

#include <cstdint>
#include <vector>

#include "sched/policy.h"
#include "sched/sched_log.h"

namespace cord
{

/** Replays a recorded decision sequence (drop-in SchedulePolicy). */
class SchedReplayPolicy : public SchedulePolicy
{
  public:
    /** @p log must outlive the policy. */
    explicit SchedReplayPolicy(const ScheduleLog &log) : log_(&log) {}

    const char *name() const override { return "replay"; }

    std::size_t
    pickThread(CoreId core, const std::vector<ThreadId> &cands) override
    {
        const std::uint64_t v = expect(SchedPoint::Pick);
        if (v >= cands.size()) {
            ++divergence_;
            return 0;
        }
        return static_cast<std::size_t>(v);
    }

    Tick
    memDelay(ThreadId tid, Addr addr, bool sync) override
    {
        return expect(SchedPoint::Delay);
    }

    /** Queries whose recorded answer was missing or mismatched. */
    std::uint64_t divergence() const { return divergence_; }

    /** Recorded decisions not consumed (a faithful replay uses all). */
    std::size_t
    remaining() const
    {
        return log_->size() - pos_;
    }

    /** Zero iff the replay reproduced the recording exactly. */
    std::uint64_t
    totalDivergence() const
    {
        return divergence_ + remaining();
    }

  private:
    /** Next recorded value, checking the decision-point kind. */
    std::uint64_t
    expect(SchedPoint point)
    {
        if (pos_ >= log_->size()) {
            ++divergence_;
            return 0; // exhausted: fall back to the baseline decision
        }
        const ScheduleDecision &d = log_->entries()[pos_++];
        if (d.point != point) {
            ++divergence_;
            return 0;
        }
        return d.value;
    }

    const ScheduleLog *log_;
    std::size_t pos_ = 0;
    std::uint64_t divergence_ = 0;
};

} // namespace cord

#endif // CORD_SCHED_REPLAY_H

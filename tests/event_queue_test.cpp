/**
 * @file
 * Unit tests for the discrete event kernel (sim/event_queue.h):
 * temporal ordering, same-tick priority ordering, insertion-order
 * tie-breaking, and the bounded run watchdog.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace cord
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickPriorityOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); }, EventQueue::kPriCore);
    q.schedule(5, [&] { order.push_back(1); }, EventQueue::kPriResponse);
    q.schedule(5, [&] { order.push_back(0); }, EventQueue::kPriBusGrant);
    q.schedule(5, [&] { order.push_back(3); }, EventQueue::kPriWalker);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SameTickSamePriorityInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsScheduledFromEventsRun)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleIn(5, [&] {
            ++fired;
            q.scheduleIn(5, [&] { ++fired; });
        });
    });
    q.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.now(), 11u);
}

TEST(EventQueue, ZeroDelaySelfSchedulingAdvancesDeterministically)
{
    EventQueue q;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 100)
            q.scheduleIn(0, tick);
    };
    q.schedule(0, tick);
    q.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueue, BoundedRunStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    for (Tick t = 10; t <= 100; t += 10)
        q.schedule(t, [&] { ++fired; });
    q.run(50); // runs events up to tick now+50 = 50
    EXPECT_EQ(fired, 5);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(fired, 10);
}

TEST(EventQueue, BoundedRunSaturatesInsteadOfWrapping)
{
    EventQueue q;
    int fired = 0;
    q.schedule(100, [&] { ++fired; });
    q.run();
    EXPECT_EQ(q.now(), 100u);

    // A huge-but-finite watchdog budget (the campaign harness passes
    // `censusTicks * 25 + 1000000`): now + maxTicks would wrap Tick
    // arithmetic, putting the limit in the past and silently skipping
    // every pending event.  The limit must saturate at kMaxTick.
    q.schedule(200, [&] { ++fired; });
    EXPECT_EQ(q.run(kMaxTick - 50), 1u);
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.step());
    q.schedule(3, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PendingCount)
{
    EventQueue q;
    EXPECT_EQ(q.pending(), 0u);
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.step();
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

} // namespace
} // namespace cord

/**
 * @file
 * Machine-readable run manifests.
 *
 * Every cordsim invocation (and any bench binary that opts in) can
 * write one JSON document describing the run end to end: tool,
 * workload, configuration, seed, build stamp (git hash + build type),
 * wall/simulated time, the full hierarchical metrics snapshot, result
 * tables, and the lint verdict.  Manifests are what `cordstat` shows,
 * diffs and aggregates, and what CI uploads so performance can be
 * compared across PRs (docs/OBSERVABILITY.md documents the schema).
 *
 * Serialization is deterministic for a fixed seed: all maps are
 * sorted and the volatile fields (git/build stamp, timestamp,
 * wallSeconds -- everything describing the host build or wall clock
 * rather than the simulated result) can be suppressed
 * (includeVolatile = false) so tests can require byte-identical
 * output across runs, commits, and build configurations.
 */

#ifndef CORD_OBS_MANIFEST_H
#define CORD_OBS_MANIFEST_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/types.h"

namespace cord
{

class JsonWriter;

/** Manifest schema identifier (bump on breaking changes). */
inline constexpr const char *kManifestSchema = "cord-manifest-v1";

/**
 * Shared emitter for tabular results: {"title", "headers", "rows"}.
 * Used both by TextTable's --json output (harness/table.h) and by the
 * tables embedded in run manifests.
 */
void writeTableJson(JsonWriter &w, const std::string &title,
                    const std::vector<std::string> &headers,
                    const std::vector<std::vector<std::string>> &rows);

/** One run's machine-readable record. */
struct RunManifest
{
    /** A result table embedded in the manifest. */
    struct Table
    {
        std::string title;
        std::vector<std::string> headers;
        std::vector<std::vector<std::string>> rows;
    };

    std::string tool;     //!< producing binary ("cordsim", "bench_...")
    std::string workload; //!< workload name ("" for multi-app benches)
    std::uint64_t seed = 0;

    /** Flat configuration key/value pairs (sorted on output). */
    std::map<std::string, std::string> config;

    bool completed = true;   //!< false = watchdog fired
    Tick simTicks = 0;       //!< simulated cycles
    std::string lintVerdict = "skipped"; //!< "clean"|"findings"|"skipped"

    /** Volatile fields, suppressed when determinism matters. */
    double wallSeconds = 0.0;
    std::string timestamp; //!< ISO-8601 UTC, set by stampTime()

    /** Host wall-time profile (seconds per attribution domain, from
     *  obs/profiler.h).  Host-dependent by nature, so rendered only
     *  under includeVolatile; the deterministic cycle attribution
     *  lives in the "profile.*" metrics instead. */
    std::map<std::string, double> hostProfile;

    /** Parallel-simulation (PDES) lane telemetry: shard counts, lane
     *  records/batches, producer/worker wait seconds.  Host- and
     *  shard-count-dependent, so rendered only under includeVolatile
     *  (the simulated result is bit-identical for any shard count). */
    std::map<std::string, double> shardMetrics;

    MetricHub metrics;
    std::vector<Table> tables;

    /** Set a numeric config entry. */
    void
    setConfig(const std::string &key, std::uint64_t v)
    {
        config[key] = std::to_string(v);
    }

    void
    setConfig(const std::string &key, const std::string &v)
    {
        config[key] = v;
    }

    /** Record the current UTC wall-clock time into `timestamp`. */
    void stampTime();

    /**
     * Render the manifest as pretty-printed JSON.
     * @param includeVolatile include git/build stamp, timestamp,
     *        and wallSeconds
     */
    std::string renderJson(bool includeVolatile = true) const;

    /** Write renderJson() to @p path (fatal on I/O error). */
    void save(const std::string &path,
              bool includeVolatile = true) const;
};

} // namespace cord

#endif // CORD_OBS_MANIFEST_H

/**
 * @file
 * Ablation study of CORD's design choices (DESIGN.md experiment
 * index): two timestamps per line vs one (Section 2.3, Figure 2's
 * history-erasure problem), check-filter bits on/off (Section 2.7.2 --
 * a bandwidth optimization that must not change detection), main
 * memory timestamps on/off (Section 2.5 -- off loses orderings), and
 * the thread-migration clock bump (Section 2.7.4).
 */

#include <cstdio>

#include "bench_common.h"

using namespace cord;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    std::printf("CORD reproduction -- ablation of CORD design choices\n");

    CordConfig base; // D = 16, 2 entries/line, filters, memTs on

    CordConfig oneEntry = base;
    oneEntry.entriesPerLine = 1;

    CordConfig noFilters = base;
    noFilters.checkFilterBits = false;

    CordConfig noMemTs = base;
    noMemTs.memTimestamps = false;

    CordConfig noMigration = base;
    noMigration.migrationIncrement = false;

    const auto results = bench::runAllCampaigns(
        {cordSpecWith(base, "CORD"),
         cordSpecWith(oneEntry, "1-entry/line"),
         cordSpecWith(noFilters, "no-filters"),
         cordSpecWith(noMemTs, "no-memTs"),
         cordSpecWith(noMigration, "no-migration")});

    const char *labels[] = {"CORD", "1-entry/line", "no-filters",
                            "no-memTs", "no-migration"};

    TextTable t({"App", "CORD", "1-entry/line", "no-filters", "no-memTs",
                 "no-migration"});
    for (const auto &[app, r] : results) {
        std::vector<std::string> row{app};
        for (const char *l : labels)
            row.push_back(TextTable::percent(r.problemRateVsIdeal(l)));
        t.addRow(row);
    }
    std::vector<std::string> avgRow{"Average"};
    for (const char *l : labels) {
        avgRow.push_back(TextTable::percent(bench::averageOver(
            results, [&](const CampaignResult &r) {
                return r.problemRateVsIdeal(l);
            })));
    }
    t.addRow(avgRow);
    t.print("Ablation: problem detection vs Ideal");

    TextTable t2({"App", "CORD", "1-entry/line", "no-filters",
                  "no-memTs", "no-migration"});
    for (const auto &[app, r] : results) {
        std::vector<std::string> row{app};
        for (const char *l : labels)
            row.push_back(TextTable::percent(r.rawRateVsIdeal(l)));
        t2.addRow(row);
    }
    t2.print("Ablation: raw race detection vs Ideal");

    std::printf("\nNotes: check-filter bits are a bandwidth optimization"
                " -- detection with and without them should match.\n"
                "Disabling memory timestamps silently drops displaced"
                " histories; order-recording would be incorrect\n"
                "(see tests/replay_test), while detection changes"
                " little.\n");
    return 0;
}

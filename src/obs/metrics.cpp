#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace cord
{

namespace
{

/** One node of the dotted-name hierarchy. */
struct MetricNode
{
    enum class Leaf : std::uint8_t { None, Counter, Gauge, Histogram };

    Leaf leaf = Leaf::None;
    std::uint64_t counter = 0;
    GaugeStat gauge;
    HistogramStat hist;
    std::map<std::string, MetricNode> children;
};

MetricNode &
insertPath(MetricNode &root, const std::string &name)
{
    MetricNode *node = &root;
    std::size_t start = 0;
    while (start <= name.size()) {
        const std::size_t dot = name.find('.', start);
        const std::string seg =
            name.substr(start, dot == std::string::npos ? std::string::npos
                                                        : dot - start);
        node = &node->children[seg];
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return *node;
}

MetricNode
buildTree(const StatRegistry &reg)
{
    MetricNode root;
    for (const auto &[name, v] : reg.all()) {
        MetricNode &n = insertPath(root, name);
        n.leaf = MetricNode::Leaf::Counter;
        n.counter = v;
    }
    for (const auto &[name, g] : reg.gauges()) {
        MetricNode &n = insertPath(root, name);
        n.leaf = MetricNode::Leaf::Gauge;
        n.gauge = g;
    }
    for (const auto &[name, h] : reg.histograms()) {
        MetricNode &n = insertPath(root, name);
        n.leaf = MetricNode::Leaf::Histogram;
        n.hist = h;
    }
    return root;
}

void
writeLeaf(JsonWriter &w, const MetricNode &n)
{
    switch (n.leaf) {
      case MetricNode::Leaf::Counter:
        w.value(n.counter);
        break;
      case MetricNode::Leaf::Gauge:
        w.beginObject();
        w.field("type", "gauge");
        w.field("count", n.gauge.count);
        w.field("mean", n.gauge.mean());
        w.field("min", n.gauge.min);
        w.field("max", n.gauge.max);
        w.field("sum", n.gauge.sum);
        w.endObject();
        break;
      case MetricNode::Leaf::Histogram: {
        w.beginObject();
        w.field("type", "histogram");
        w.field("count", n.hist.count);
        w.field("mean", n.hist.mean());
        w.field("min", n.hist.min);
        w.field("max", n.hist.max);
        w.field("sum", n.hist.sum);
        w.key("buckets");
        w.beginArray();
        for (unsigned b = 0; b < HistogramStat::kBuckets; ++b) {
            if (n.hist.buckets[b] == 0)
                continue;
            w.beginObject();
            w.field("lo", HistogramStat::bucketLow(b));
            w.field("hi", HistogramStat::bucketHigh(b));
            w.field("n", n.hist.buckets[b]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        break;
      }
      case MetricNode::Leaf::None:
        w.null();
        break;
    }
}

void
writeNode(JsonWriter &w, const MetricNode &n)
{
    if (n.children.empty()) {
        writeLeaf(w, n);
        return;
    }
    w.beginObject();
    if (n.leaf != MetricNode::Leaf::None) {
        w.key("value");
        writeLeaf(w, n);
    }
    for (const auto &[seg, child] : n.children) {
        w.key(seg);
        writeNode(w, child);
    }
    w.endObject();
}

} // namespace

void
MetricHub::writeJson(JsonWriter &w) const
{
    writeNode(w, buildTree(merged_));
}

std::string
MetricHub::renderText() const
{
    std::ostringstream os;
    char buf[64];
    for (const auto &[name, v] : merged_.all())
        os << name << " = " << v << "\n";
    for (const auto &[name, g] : merged_.gauges()) {
        std::snprintf(buf, sizeof(buf), "%g/%g/%g", g.min, g.mean(),
                      g.max);
        os << name << " = gauge(n=" << g.count << ", min/mean/max="
           << buf << ")\n";
    }
    for (const auto &[name, h] : merged_.histograms()) {
        std::snprintf(buf, sizeof(buf), "%g", h.mean());
        os << name << " = histogram(n=" << h.count << ", min=" << h.min
           << ", mean=" << buf << ", max=" << h.max << ")\n";
    }
    return os.str();
}

namespace
{

void
flattenInto(const JsonValue &v, const std::string &prefix,
            std::map<std::string, double> &out)
{
    if (v.isNumber()) {
        out[prefix] = v.asNumber();
        return;
    }
    if (!v.isObject())
        return;

    const std::string type = v.str("type");
    if (type == "gauge" || type == "histogram") {
        for (const char *fieldName :
             {"count", "mean", "min", "max", "sum"}) {
            const JsonValue *f = v.find(fieldName);
            if (f && f->isNumber())
                out[prefix + "." + fieldName] = f->asNumber();
        }
        // Histograms additionally surface percentile estimates from
        // their log2 buckets (the estimate is the upper bound of the
        // bucket holding the rank, i.e. within one power of two):
        // without them `cordstat agg` would drop distribution shape.
        const JsonValue *buckets = v.find("buckets");
        if (type == "histogram" && buckets && buckets->isArray()) {
            double total = 0;
            for (std::size_t i = 0; i < buckets->size(); ++i) {
                const JsonValue *n = buckets->items()[i].find("n");
                if (n && n->isNumber())
                    total += n->asNumber();
            }
            for (const auto &[pname, q] :
                 {std::pair<const char *, double>{"p50", 0.50},
                  std::pair<const char *, double>{"p99", 0.99}}) {
                if (total <= 0)
                    break;
                const double rank = q * total;
                double cum = 0;
                for (std::size_t i = 0; i < buckets->size(); ++i) {
                    const JsonValue &b = buckets->items()[i];
                    const JsonValue *n = b.find("n");
                    const JsonValue *hi = b.find("hi");
                    if (!n || !n->isNumber())
                        continue;
                    cum += n->asNumber();
                    if (cum >= rank) {
                        if (hi && hi->isNumber())
                            out[prefix + "." + pname] = hi->asNumber();
                        break;
                    }
                }
            }
        }
        return;
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
        const std::string &key = v.keys()[i];
        const std::string name =
            key == "value" ? prefix
            : prefix.empty() ? key
                             : prefix + "." + key;
        flattenInto(v.items()[i], name, out);
    }
}

} // namespace

std::map<std::string, double>
flattenMetricsJson(const JsonValue &metrics)
{
    std::map<std::string, double> out;
    flattenInto(metrics, "", out);
    return out;
}

} // namespace cord

/**
 * @file
 * ocean -- regular-grid ocean simulation analog (paper input: 130x130
 * grid).  Red-black Gauss-Seidel style sweeps over row bands with
 * barriers between sweeps; neighbour rows at band boundaries are the
 * shared data; a lock-protected global residual reduction ends each
 * iteration.
 */

#include <vector>

#include "workloads/factories.h"
#include "workloads/patterns.h"
#include "workloads/workload.h"

namespace cord
{
namespace
{

class Ocean final : public Workload
{
  public:
    const WorkloadMeta &
    meta() const override
    {
        static const WorkloadMeta m{
            "ocean", "130x130 grid",
            "(32*scale*threads) rows x 16 columns, 3 red-black iterations",
            "sweep barriers + residual reduction lock"};
        return m;
    }

    void
    setup(const WorkloadParams &p, AddressSpace &as) override
    {
        params_ = p;
        rows_ = 32 * p.scale * p.numThreads;
        grid_ = as.allocSharedLineAligned(rows_ * kCols, "grid");
        residualLock_ = as.allocSync("residualLock");
        residual_ = as.allocSharedLineAligned(1, "residual");
        barrier_ = SyncRuntime::makeBarrier(as, p.numThreads);
    }

    Task<void>
    body(SyncRuntime &rt, ThreadCtx &ctx) override
    {
        return run(rt, ctx);
    }

  private:
    static constexpr unsigned kCols = 16;
    static constexpr unsigned kIters = 3;

    Addr
    cell(unsigned r, unsigned c) const
    {
        return grid_ + static_cast<Addr>(r * kCols + c) * kWordBytes;
    }

    Task<void>
    run(SyncRuntime &rt, ThreadCtx &ctx)
    {
        const unsigned nt = params_.numThreads;
        const unsigned tid = ctx.tid;
        const unsigned band = rows_ / nt;
        const unsigned r0 = tid * band;
        const unsigned r1 = r0 + band;

        for (unsigned iter = 0; iter < kIters; ++iter) {
            for (unsigned color = 0; color < 2; ++color) {
                std::uint64_t localResid = 0;
                for (unsigned r = r0; r < r1; ++r) {
                    if ((r & 1) != color)
                        continue;
                    for (unsigned c = 1; c + 1 < kCols; c += 2) {
                        // 5-point stencil: north/south rows may belong
                        // to a neighbouring thread's band.
                        std::uint64_t acc =
                            (co_await opLoad(cell(r, c - 1))).value +
                            (co_await opLoad(cell(r, c + 1))).value;
                        if (r > 0)
                            acc += (co_await opLoad(cell(r - 1, c))).value;
                        if (r + 1 < rows_)
                            acc += (co_await opLoad(cell(r + 1, c))).value;
                        co_await opStore(cell(r, c), acc / 4 + 1);
                        localResid += acc & 0xf;
                    }
                    co_await opCompute(20);
                }
                // Fold the sweep residual into the global reduction.
                co_await rt.lock(ctx, residualLock_);
                co_await patterns::bumpWords(residual_, 1,
                                             localResid & 0xff);
                co_await rt.unlock(ctx, residualLock_);
                co_await rt.barrier(ctx, barrier_);
            }
        }
    }

    WorkloadParams params_;
    unsigned rows_ = 0;
    Addr grid_ = 0;
    Addr residualLock_ = 0;
    Addr residual_ = 0;
    BarrierVars barrier_;
};

} // namespace

std::unique_ptr<Workload>
makeOcean()
{
    return std::make_unique<Ocean>();
}

} // namespace cord

/**
 * @file
 * Seeded corruption of wire-format order logs, for validating that
 * cordlint's well-formedness checks catch real damage (the analysis
 * analog of the sync-removal injector): tail truncation, reordered
 * entries, clock regressions and zeroed fragments.
 *
 * Every corruption is chosen deterministically from an Rng so the test
 * campaigns are reproducible, and each is constructed to violate an
 * invariant the lint checks verify -- detection must be 100%, not
 * best-effort.
 */

#ifndef CORD_INJECT_LOG_CORRUPTOR_H
#define CORD_INJECT_LOG_CORRUPTOR_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cord/clock.h"
#include "cord/order_log.h"
#include "sim/logging.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace cord
{

/** The kinds of damage the corruptor can inflict on a wire log. */
enum class LogCorruptionKind : std::uint8_t
{
    TruncateTail,       //!< drop bytes so the log ends mid-entry
    SwapAdjacentEntries, //!< reorder two fragments of one thread
    ClockRegression,    //!< move one fragment's clock backwards
    ZeroInstrCount,     //!< zero one fragment's instruction count
};

constexpr std::array<LogCorruptionKind, 4> kAllLogCorruptions = {
    LogCorruptionKind::TruncateTail,
    LogCorruptionKind::SwapAdjacentEntries,
    LogCorruptionKind::ClockRegression,
    LogCorruptionKind::ZeroInstrCount,
};

inline const char *
logCorruptionName(LogCorruptionKind k)
{
    switch (k) {
      case LogCorruptionKind::TruncateTail:
        return "truncate-tail";
      case LogCorruptionKind::SwapAdjacentEntries:
        return "swap-adjacent-entries";
      case LogCorruptionKind::ClockRegression:
        return "clock-regression";
      case LogCorruptionKind::ZeroInstrCount:
        return "zero-instr-count";
    }
    return "unknown";
}

/** What one corruption attempt did. */
struct LogCorruptionOutcome
{
    bool applied = false;    //!< false = log has no viable target
    std::string description; //!< human-readable record of the damage
};

namespace corrupt_detail
{

inline std::uint16_t
read16(const std::vector<std::uint8_t> &b, std::size_t off)
{
    return static_cast<std::uint16_t>(
        b[off] | (static_cast<unsigned>(b[off + 1]) << 8));
}

inline void
write16(std::vector<std::uint8_t> &b, std::size_t off, std::uint16_t v)
{
    b[off] = static_cast<std::uint8_t>(v & 0xff);
    b[off + 1] = static_cast<std::uint8_t>(v >> 8);
}

} // namespace corrupt_detail

/**
 * Apply one seeded corruption of @p kind to @p bytes in place.
 * @p initialClock must match the recording (CORD uses 1).
 */
inline LogCorruptionOutcome
corruptWireLog(std::vector<std::uint8_t> &bytes, LogCorruptionKind kind,
               Rng &rng, Ts64 initialClock = 1)
{
    using namespace corrupt_detail;
    constexpr std::size_t kEntry = OrderLog::kEntryWireBytes;
    const std::size_t n = bytes.size() / kEntry;
    LogCorruptionOutcome out;
    if (n == 0)
        return out;

    std::ostringstream os;
    switch (kind) {
      case LogCorruptionKind::TruncateTail: {
        // Drop whole entries plus a partial one, so the framing check
        // always trips (a whole-entry truncation is only detectable
        // against a trace).
        const std::size_t wholeDropped =
            static_cast<std::size_t>(rng.below(std::min<std::uint64_t>(
                n, 4)));
        const std::size_t partial =
            1 + static_cast<std::size_t>(rng.below(kEntry - 1));
        const std::size_t keep =
            bytes.size() - wholeDropped * kEntry - partial;
        bytes.resize(keep);
        os << "truncated " << wholeDropped << " whole entries plus "
           << partial << " bytes off the tail";
        out.applied = true;
        break;
      }
      case LogCorruptionKind::SwapAdjacentEntries: {
        // Candidates: consecutive entries of the same thread with
        // different wire clocks (swapping breaks the per-thread clock
        // chain, which the decoder surfaces as a window violation).
        std::vector<std::pair<std::size_t, std::size_t>> cands;
        std::vector<std::size_t> lastOfThread(1u << 16,
                                              static_cast<std::size_t>(-1));
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint16_t tid = read16(bytes, i * kEntry);
            const std::size_t prev = lastOfThread[tid];
            if (prev != static_cast<std::size_t>(-1) &&
                read16(bytes, prev * kEntry + 2) !=
                    read16(bytes, i * kEntry + 2))
                cands.emplace_back(prev, i);
            lastOfThread[tid] = i;
        }
        if (cands.empty())
            return out;
        const auto [a, b] = cands[static_cast<std::size_t>(
            rng.below(cands.size()))];
        for (std::size_t k = 0; k < kEntry; ++k)
            std::swap(bytes[a * kEntry + k], bytes[b * kEntry + k]);
        os << "swapped same-thread entries #" << a << " and #" << b;
        out.applied = true;
        break;
      }
      case LogCorruptionKind::ClockRegression: {
        // Rewind one entry's wire clock below its per-thread
        // predecessor.  The decoder reconstructs this as a forward
        // jump of >= the sliding window, which log.window flags.
        const std::size_t target =
            static_cast<std::size_t>(rng.below(n));
        std::unordered_map<std::uint16_t, Ts64> last;
        std::uint64_t jump = 0;
        for (std::size_t i = 0; i <= target; ++i) {
            const std::uint16_t tid = read16(bytes, i * kEntry);
            const std::uint16_t wire = read16(bytes, i * kEntry + 2);
            auto it = last.find(tid);
            const Ts64 prev = it == last.end() ? initialClock
                                               : it->second;
            Ts64 clock = (prev & ~static_cast<Ts64>(0xffff)) | wire;
            if (clock < prev)
                clock += 1ULL << 16;
            if (i == target)
                jump = clock - prev;
            last[tid] = clock;
        }
        // delta > jump regresses the clock past its predecessor; the
        // bound keeps the decoded forward jump >= kClockWindow.
        const std::uint16_t delta = static_cast<std::uint16_t>(
            jump + 1 + rng.below(256));
        const std::size_t off = target * kEntry + 2;
        write16(bytes, off,
                static_cast<std::uint16_t>(read16(bytes, off) - delta));
        os << "regressed entry #" << target << "'s clock by " << delta;
        out.applied = true;
        break;
      }
      case LogCorruptionKind::ZeroInstrCount: {
        const std::size_t target =
            static_cast<std::size_t>(rng.below(n));
        for (std::size_t k = 4; k < kEntry; ++k)
            bytes[target * kEntry + k] = 0;
        os << "zeroed entry #" << target << "'s instruction count";
        out.applied = true;
        break;
      }
    }
    out.description = os.str();
    return out;
}

} // namespace cord

#endif // CORD_INJECT_LOG_CORRUPTOR_H

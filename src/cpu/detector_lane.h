/**
 * @file
 * Detector lane: runs pure-observer detectors on a host worker thread.
 *
 * The machine model's cross-core lookahead is zero (mem/lookahead.h),
 * so core/memory events cannot be sharded conservatively -- but the
 * committed access stream flowing *out* of the coordinator into
 * detectors has unbounded downstream lookahead whenever the detector
 * never feeds timing back (Detector::pureObserver).  A DetectorLane
 * exploits that: the simulation thread appends each committed access to
 * a small local buffer and periodically hands whole batches to a worker
 * thread, which replays them -- in exactly the published order -- into
 * the detectors assigned to this lane.
 *
 * Determinism: a single producer (the simulation thread) pushes batches
 * in commit order and HandoffQueue preserves batch order, so the worker
 * observes the identical stream a sequential run would deliver inline.
 * Detector state, stats, race reports and order logs are therefore
 * bit-identical for any shard count -- proven end to end by
 * tests/pdes_test.cpp and the determinism goldens.
 *
 * Threading contract:
 *  - onAccess/onThreadEnd/flush: simulation (producer) thread only.
 *  - The worker runs with no thread-local Profiler or EventTracer
 *    active, so detector-internal hook sites are disabled off-thread;
 *    lane wait time is attributed producer-side to ProfDomain::
 *    PdesBarrier instead.  (Runs that need per-detector attribution or
 *    tracing force --sim-shards 1; cordsim rejects the combination.)
 *  - join() must be called before reading any detector state; after
 *    it returns the detectors are owned by the calling thread again,
 *    and Detector::finish() -- which may publish stats -- runs there,
 *    not on the worker.
 */

#ifndef CORD_CPU_DETECTOR_LANE_H
#define CORD_CPU_DETECTOR_LANE_H

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "cord/detector.h"
#include "mem/access.h"
#include "sim/handoff_queue.h"
#include "sim/logging.h"

namespace cord
{

/** One worker thread replaying the committed stream into a set of
 *  pure-observer detectors. */
class DetectorLane
{
  public:
    /** Records handed across the thread boundary. */
    struct Record
    {
        enum class Kind : std::uint8_t
        {
            Access,    //!< replay ev into Detector::onAccess
            ThreadEnd, //!< replay (tid, instrs) into onThreadEnd
        };

        MemEvent ev;
        Kind kind = Kind::Access;
    };

    /** Producer-side batch size: accumulate this many records locally
     *  before touching the shared queue. */
    static constexpr std::size_t kBatchRecords = 256;

    /** Host-side lane statistics (volatile; never simulated state). */
    struct Stats
    {
        std::uint64_t records = 0;       //!< records replayed
        std::uint64_t batches = 0;       //!< batches handed off
        std::uint64_t producerWaitNs = 0; //!< backpressure stalls
        std::uint64_t workerIdleNs = 0;  //!< worker waits for work
    };

    /** @param detectors pure observers this lane replays into; each
     *  must outlive the lane.  The lane asserts the contract. */
    explicit DetectorLane(std::vector<Detector *> detectors)
        : detectors_(std::move(detectors))
    {
        cord_assert(!detectors_.empty(), "detector lane needs work");
        for (const Detector *d : detectors_)
            cord_assert(d->pureObserver(),
                        "detector lane given a non-pure observer: ",
                        d->name().c_str());
        buffer_.reserve(kBatchRecords);
        worker_ = std::thread([this] { consume(); });
    }

    ~DetectorLane()
    {
        // Defensive: normal shutdown goes through join().
        if (worker_.joinable())
            join();
    }

    DetectorLane(const DetectorLane &) = delete;
    DetectorLane &operator=(const DetectorLane &) = delete;

    /** Producer thread: queue one committed access. */
    void
    onAccess(const MemEvent &ev)
    {
        buffer_.push_back(Record{ev, Record::Kind::Access});
        if (buffer_.size() >= kBatchRecords)
            flush();
    }

    /** Producer thread: queue a thread-end notification. */
    void
    onThreadEnd(ThreadId tid, std::uint64_t totalInstrs)
    {
        MemEvent ev;
        ev.tid = tid;
        ev.instrCount = totalInstrs;
        buffer_.push_back(Record{ev, Record::Kind::ThreadEnd});
        if (buffer_.size() >= kBatchRecords)
            flush();
    }

    /** Producer thread: hand the local buffer to the worker now. */
    void
    flush()
    {
        if (buffer_.empty())
            return;
        stats_.producerWaitNs += queue_.pushBatch(std::move(buffer_));
        buffer_.clear();
        buffer_.reserve(kBatchRecords);
    }

    /**
     * Flush the tail, close the stream, and wait for the worker to
     * drain it.  After this returns, detector state is fully caught up
     * with everything published and safe to read from the caller.
     * @return nanoseconds the caller spent blocked on the worker
     */
    std::uint64_t
    join()
    {
        cord_assert(worker_.joinable(), "detector lane joined twice");
        flush();
        queue_.close();
        const auto t0 = std::chrono::steady_clock::now();
        worker_.join();
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }

    /** Valid after join(). */
    const Stats &stats() const { return stats_; }

    const std::vector<Detector *> &detectors() const { return detectors_; }

  private:
    void
    consume()
    {
        std::vector<Record> batch;
        while (queue_.popBatch(batch, &stats_.workerIdleNs)) {
            ++stats_.batches;
            for (const Record &r : batch) {
                if (r.kind == Record::Kind::Access) {
                    for (Detector *d : detectors_)
                        d->onAccess(r.ev);
                } else {
                    for (Detector *d : detectors_)
                        d->onThreadEnd(r.ev.tid, r.ev.instrCount);
                }
            }
            stats_.records += batch.size();
        }
    }

    std::vector<Detector *> detectors_;
    std::vector<Record> buffer_;
    HandoffQueue<Record> queue_;
    Stats stats_;
    std::thread worker_;
};

} // namespace cord

#endif // CORD_CPU_DETECTOR_LANE_H

#include "mem/timing_mem.h"

#include <bit>
#include <optional>

#include "obs/tracer.h"
#include "sim/logging.h"

namespace cord
{

TimingMemSystem::TimingMemSystem(const MachineConfig &cfg)
    : cfg_(cfg),
      addrBus_(cfg.addrBusOccupancy, 0),
      dataBus_(cfg.dataBusOccupancy, 1),
      memBus_(cfg.offChipBusOccupancy, 2)
{
    cfg_.l1.validate();
    cfg_.l2.validate();
    l2_.reserve(cfg_.numCores);
    l1_.reserve(cfg_.numCores);
    for (unsigned i = 0; i < cfg_.numCores; ++i) {
        l2_.emplace_back(cfg_.l2);
        l1_.emplace_back(cfg_.l1);
    }
    if (cfg_.coherence == CoherenceKind::Directory) {
        // One request channel per directory slice, line-interleaved:
        // the directory replaces the shared address/timestamp bus with
        // per-slice ports, so requests to different slices proceed
        // independently.  Each port keeps the address-bus occupancy.
        sliceBus_.reserve(cfg_.numCores);
        for (unsigned i = 0; i < cfg_.numCores; ++i)
            sliceBus_.emplace_back(cfg_.addrBusOccupancy,
                                   static_cast<CoreId>(3 + i));
    }
}

BusChannel &
TimingMemSystem::requestChannel(Addr line)
{
    if (cfg_.coherence == CoherenceKind::Directory)
        return sliceBus_[homeSlice(line)];
    return addrBus_;
}

bool
TimingMemSystem::remoteHolders(CoreId core, Addr line,
                               std::vector<CoreId> &holders) const
{
    holders.clear();
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        if (c == core)
            continue;
        const auto *l = l2_[c].find(line);
        if (l && l->state.mesi != Mesi::Invalid)
            holders.push_back(c);
    }
    return !holders.empty();
}

void
TimingMemSystem::handleL2Victim(CoreId core,
                                const CacheArray<L2State>::Line &victim,
                                Tick now)
{
    // Inclusion: L1 copy goes with the L2 line.
    l1_[core].invalidate(victim.addr);
    if (EventTracer *t = EventTracer::active())
        t->emit(TraceEventKind::CacheEvict, now, kInvalidThread, core,
                victim.addr, victim.state.mesi == Mesi::Modified);
    if (victim.state.mesi == Mesi::Modified) {
        // Fire-and-forget write-back: occupies the buses but does not
        // extend the latency of the access that triggered the eviction.
        const Tick grant = requestChannel(victim.addr).acquire(now);
        dataBus_.acquire(grant);
        memBus_.acquire(grant);
    }
}

TimingResult
TimingMemSystem::access(CoreId core, Addr addr, bool isWrite, Tick now)
{
    cord_assert(core < cfg_.numCores, "bad core id ", core);
    const Addr line = lineAddr(addr);

    auto &l2 = l2_[core];
    auto &l1 = l1_[core];
    auto *l2Line = l2.touch(line);
    const bool l1Present = l1.touch(line) != nullptr;

    TimingResult res;

    if (l2Line && l2Line->state.mesi != Mesi::Invalid) {
        // Hit in the private hierarchy.
        const bool needUpgrade =
            isWrite && l2Line->state.mesi == Mesi::Shared;
        Tick done = now + (l1Present ? cfg_.l1HitLatency
                                     : cfg_.l2HitLatency);
        if (needUpgrade) {
            // BusUpgr: invalidate all other copies (an ownership
            // request to the line's home slice in directory mode).
            const Tick grant = requestChannel(line).acquire(now);
            done = grant + cfg_.upgradeLatency;
            res.usedAddrBus = true;
            for (CoreId c = 0; c < cfg_.numCores; ++c) {
                if (c == core)
                    continue;
                l2_[c].invalidate(line);
                l1_[c].invalidate(line);
            }
        }
        if (isWrite) {
            l2Line->state.mesi = Mesi::Modified;
        } else if (l2Line->state.mesi == Mesi::Exclusive && isWrite) {
            l2Line->state.mesi = Mesi::Modified;
        }
        if (!l1Present) {
            std::optional<CacheArray<char>::Line> v;
            l1.insert(line, v);
        }
        res.completion = done;
        res.source = l1Present ? ServiceSource::L1Hit : ServiceSource::L2Hit;
        ++serviceCounts_[static_cast<unsigned>(res.source)];
        return res;
    }

    // Miss: BusRd / BusRdX (snooping) or a request to the line's home
    // directory slice.
    res.usedAddrBus = true;
    const Tick grant = requestChannel(line).acquire(now);
    const bool directory = cfg_.coherence == CoherenceKind::Directory;
    // In directory mode the request first indirects through the
    // directory at the memory controller.
    const Tick resolved =
        directory ? grant + cfg_.directoryLatency : grant;
    std::vector<CoreId> &holders = holdersScratch_;
    const bool snoopHit = remoteHolders(core, line, holders);

    Tick done;
    if (snoopHit) {
        // Another private L2 supplies the line: bus snarf (snooping)
        // or a three-hop forward (directory).
        done = resolved + (directory ? cfg_.forwardLatency
                                     : cfg_.cacheToCacheLatency);
        dataBus_.acquire(resolved);
        res.source = ServiceSource::CacheToCache;
        if (isWrite) {
            // All other copies invalidated; the directory sends one
            // directed invalidation per sharer (serialized at the home
            // slice's port) instead of a broadcast.
            for (CoreId c : holders) {
                l2_[c].invalidate(line);
                l1_[c].invalidate(line);
                if (directory)
                    sliceBus_[homeSlice(line)].acquire(resolved);
            }
        } else {
            // Suppliers downgrade to Shared.
            for (CoreId c : holders) {
                auto *h = l2_[c].find(line);
                if (h)
                    h->state.mesi = Mesi::Shared;
            }
        }
    } else {
        // Serviced by main memory.
        done = resolved + cfg_.memoryLatency;
        memBus_.acquire(resolved);
        dataBus_.acquire(done - cfg_.dataBusOccupancy);
        res.source = ServiceSource::Memory;
    }
    ++serviceCounts_[static_cast<unsigned>(res.source)];
    if (EventTracer *t = EventTracer::active())
        t->emit(TraceEventKind::CacheFill, now, kInvalidThread, core,
                line, static_cast<std::uint64_t>(res.source));

    // Install the line locally.
    std::optional<CacheArray<L2State>::Line> victim;
    auto &fresh = l2.insert(line, victim);
    if (victim)
        handleL2Victim(core, *victim, now);
    fresh.state.mesi = isWrite ? Mesi::Modified
                     : snoopHit ? Mesi::Shared
                                : Mesi::Exclusive;
    std::optional<CacheArray<char>::Line> l1Victim;
    l1.insert(line, l1Victim);

    res.completion = done;
    return res;
}

Tick
TimingMemSystem::chargeRaceCheck(Tick now, Addr addr, unsigned sharers,
                                 std::uint64_t sharerMask)
{
    if (cfg_.coherence != CoherenceKind::Directory) {
        // Snooping: one broadcast address/timestamp bus transaction;
        // the timestamp response rides the dedicated snoop-response
        // wires, like coherence responses, and there is no data
        // transfer (paper Section 2.7.2).
        addrBus_.acquire(now);
        return addrBus_.occupancy();
    }
    // Directory: the check is a request to the line's home slice; the
    // slice consults its banked memory timestamps and sharer set and
    // forwards one point-to-point probe per remote sharer.  Each
    // forwarded probe occupies its *target's* slice channel, so
    // probes to distinct sharers proceed in parallel and the home
    // port serializes only the request itself.  No broadcast term: an
    // unshared line costs a single slice transaction no matter how
    // many cores exist, and a widely shared one loads each sharer's
    // port once instead of the home port N times.
    BusChannel &slice = sliceBus_[homeSlice(addr)];
    const Tick grant = slice.acquire(now);
    Tick cycles = slice.occupancy();
    if (sharerMask != 0) {
        for (std::uint64_t m = sharerMask; m != 0; m &= m - 1) {
            const unsigned target =
                static_cast<unsigned>(std::countr_zero(m));
            if (target >= sliceBus_.size())
                continue;
            sliceBus_[target].acquire(grant + cfg_.directoryLatency);
            cycles += sliceBus_[target].occupancy();
        }
    } else {
        // Sharer identities unknown (machines beyond 64 cores):
        // serialize the probes at the home port, conservatively.
        for (unsigned i = 0; i < sharers; ++i) {
            slice.acquire(grant + cfg_.directoryLatency);
            cycles += slice.occupancy();
        }
    }
    return cycles;
}

Tick
TimingMemSystem::chargeMemTsBroadcast(Tick now, Addr addr)
{
    // Snooping broadcasts the new memory timestamp on the shared bus;
    // a directory updates only the home slice's bank.
    BusChannel &ch = requestChannel(lineAddr(addr));
    ch.acquire(now);
    return ch.occupancy();
}

void
TimingMemSystem::exportStats(StatRegistry &reg) const
{
    addrBus_.exportStats(reg, "bus.addr");
    dataBus_.exportStats(reg, "bus.data");
    memBus_.exportStats(reg, "bus.mem");
    if (!sliceBus_.empty()) {
        // Directory mode only (snooping manifests stay unchanged):
        // aggregate slice-port utilization across all slices.
        Tick busy = 0, wait = 0;
        std::uint64_t txns = 0;
        for (const BusChannel &s : sliceBus_) {
            busy += s.busyCycles();
            wait += s.waitCycles();
            txns += s.transactions();
        }
        reg.set("bus.slice.transactions", txns);
        reg.set("bus.slice.busyCycles", busy);
        reg.set("bus.slice.waitCycles", wait);
    }
    reg.set("service.l1Hits",
            serviceCount(ServiceSource::L1Hit));
    reg.set("service.l2Hits",
            serviceCount(ServiceSource::L2Hit));
    reg.set("service.cacheToCache",
            serviceCount(ServiceSource::CacheToCache));
    reg.set("service.memory",
            serviceCount(ServiceSource::Memory));
}

} // namespace cord

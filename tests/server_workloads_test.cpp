/**
 * @file
 * Server-family workload tests beyond the generic per-app suite in
 * workloads_test.cpp: traffic stats surfaced through run outcomes,
 * overload behaviour (drops at the bounded ring), and the campaign
 * determinism contract at non-default offered loads -- byte-identical
 * manifests for any --jobs value even though the server tier runs on
 * the jittered-spin runtime path.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/experiments.h"
#include "harness/runner.h"
#include "obs/manifest.h"
#include "workloads/workload.h"

namespace cord
{
namespace
{

RunOutcome
runServerApp(const std::string &app, unsigned load, std::uint64_t seed)
{
    RunSetup setup;
    setup.workload = app;
    setup.params.numThreads = 4;
    setup.params.scale = 1;
    setup.params.seed = seed;
    setup.params.loadPercent = load;
    return runWorkload(setup);
}

TEST(ServerWorkloads, EveryAppExportsTrafficStats)
{
    for (const std::string &app : workloadNames("server")) {
        const RunOutcome out = runServerApp(app, 100, 17);
        ASSERT_TRUE(out.completed) << app;
        const std::uint64_t completed =
            out.stats.get("server.requests.completed");
        EXPECT_GT(completed, 0u) << app << ": no requests completed";
        EXPECT_GE(out.stats.get("server.requests.arrived"), completed)
            << app;
        EXPECT_EQ(out.stats.get("server.loadPercent"), 100u) << app;
        EXPECT_EQ(out.stats.histogram("server.latencyTicks").count,
                  completed)
            << app << ": latency histogram disagrees with completions";
    }
}

TEST(ServerWorkloads, LatencyTailGrowsWithOfferedLoad)
{
    // Open-loop arrivals: at 8x nominal load the kvstore's p99 must sit
    // clearly above the 25%-load tail -- queueing delay is part of the
    // measured latency, exactly like a load generator against a real
    // server.
    const RunOutcome light = runServerApp("kvstore", 25, 21);
    const RunOutcome heavy = runServerApp("kvstore", 800, 21);
    ASSERT_TRUE(light.completed);
    ASSERT_TRUE(heavy.completed);
    const double p99Light =
        light.stats.histogram("server.latencyTicks").quantile(0.99);
    const double p99Heavy =
        heavy.stats.histogram("server.latencyTicks").quantile(0.99);
    EXPECT_GT(p99Heavy, p99Light)
        << "offered load did not move the latency tail";
}

TEST(ServerWorkloads, EventLoopDropsWhenTheRingOverflows)
{
    // The event loop's ring holds 16 events; at extreme offered load
    // bursts outrun the consumers and arrivals must be dropped and
    // counted, not silently lost (arrived == completed + dropped).
    RunOutcome out = runServerApp("eventloop", 3000, 9);
    ASSERT_TRUE(out.completed);
    const std::uint64_t arrived =
        out.stats.get("server.requests.arrived");
    const std::uint64_t completed =
        out.stats.get("server.requests.completed");
    const std::uint64_t dropped =
        out.stats.get("server.requests.dropped");
    EXPECT_GT(dropped, 0u) << "overload produced no drops";
    EXPECT_EQ(arrived, completed + dropped);
}

TEST(ServerWorkloads, RunsAreDeterministicPerSeed)
{
    for (const std::string &app : workloadNames("server")) {
        const RunOutcome a = runServerApp(app, 200, 33);
        const RunOutcome b = runServerApp(app, 200, 33);
        ASSERT_TRUE(a.completed) << app;
        EXPECT_EQ(a.ticks, b.ticks) << app;
        for (unsigned t = 0; t < 4; ++t)
            EXPECT_EQ(a.readChecksums[t], b.readChecksums[t])
                << app << " thread " << t;
    }
}

std::string
serverCampaignManifest(const std::string &app, unsigned load,
                       unsigned jobs)
{
    CampaignConfig cfg;
    cfg.workload = app;
    cfg.params.numThreads = 4;
    cfg.params.scale = 1;
    cfg.params.seed = 29;
    cfg.params.loadPercent = load;
    cfg.injections = 6;
    cfg.seed = 501;
    cfg.jobs = jobs;
    const CampaignResult r =
        runCampaign(cfg, {cordSpec(16), vcL2CacheSpec()});
    RunManifest m;
    m.tool = "test_server_workloads";
    m.seed = 501;
    m.setConfig("load", std::uint64_t(load));
    addCampaignMetrics(m, app, r);
    return m.renderJson(/*includeVolatile=*/false);
}

TEST(ServerWorkloads, CampaignManifestByteIdenticalAcrossJobCounts)
{
    // The serving tier's arrival schedules are precomputed from the
    // seed alone, so the --jobs N determinism contract must hold at a
    // non-default load too.
    for (const std::string &app : {std::string("kvstore"),
                                   std::string("worksteal")}) {
        const std::string j1 = serverCampaignManifest(app, 200, 1);
        const std::string j4 = serverCampaignManifest(app, 200, 4);
        EXPECT_EQ(j1, j4) << app
                          << ": --jobs changed the campaign manifest";
    }
}

} // namespace
} // namespace cord


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_task_test.cpp" "tests/CMakeFiles/test_sim_task.dir/sim_task_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim_task.dir/sim_task_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/cord_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cord_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cord_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cord/CMakeFiles/cord_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cord_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cord_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

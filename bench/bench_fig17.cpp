/**
 * @file
 * Figure 17 reproduction: raw data race detection with scalar clocks,
 * D in {1, 4, 16, 256}, relative to the vector-clock L2Cache
 * configuration.
 *
 * Paper finding: scalar clocks with D = 1 lose most raw detection
 * ability; raw rates improve with D up to 16.
 */

#include <cstdio>

#include "bench_common.h"

using namespace cord;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    std::printf("CORD reproduction -- Figure 17\n");
    const auto results = bench::runAllCampaigns(
        {cordSpec(1), cordSpec(4), cordSpec(16), cordSpec(256),
         vcL2CacheSpec()});
    TextTable t({"App", "IdealRaces", "D1", "D4", "D16", "D256"});
    const char *labels[] = {"CORD-D1", "CORD-D4", "CORD-D16",
                            "CORD-D256"};
    for (const auto &[app, r] : results) {
        std::vector<std::string> row{app,
                                     std::to_string(r.idealRawRaces)};
        for (const char *l : labels)
            row.push_back(
                TextTable::percent(r.rawRateVs(l, "VC-L2Cache")));
        t.addRow(row);
    }
    std::vector<std::string> avgRow{"Average", ""};
    for (const char *l : labels) {
        avgRow.push_back(TextTable::percent(bench::averageOver(
            results, [&](const CampaignResult &r) {
                return r.rawRateVs(l, "VC-L2Cache");
            })));
    }
    t.addRow(avgRow);
    t.print("Figure 17: raw race detection with scalar clocks vs "
            "VC-L2Cache (D sweep)");
    return 0;
}

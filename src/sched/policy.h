/**
 * @file
 * Schedule-exploration policy interface (docs/SCHEDULING.md).
 *
 * CORD only detects a race when it dynamically *manifests* (paper
 * Section 3.2): every simulation run executes exactly one interleaving,
 * so a single run measures one point in the space of orderings the
 * paper's evaluation argues about.  A SchedulePolicy perturbs the two
 * scheduling decisions the execution engine makes --
 *
 *  1. which runnable thread a core issues next (pickThread), and
 *  2. how long a committed memory access is stalled beyond its modeled
 *     latency (memDelay) --
 *
 * so campaigns can sample *many* interleavings per injected bug and
 * measure manifestation as a distribution instead of a point.
 *
 * Determinism contract: a policy must be a pure function of its seed
 * and the query sequence.  The simulation records every answer in a
 * ScheduleLog (sched/sched_log.h); feeding the log back through
 * SchedReplayPolicy (sched/replay.h) reproduces the explored schedule
 * exactly, which is what makes a race found at schedule seed S
 * reproducible with `cordsim --replay-sched`.
 */

#ifndef CORD_SCHED_POLICY_H
#define CORD_SCHED_POLICY_H

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace cord
{

/** The two kinds of decision points a policy is consulted at. */
enum class SchedPoint : std::uint8_t
{
    Pick = 0,  //!< core-issue choice among >=2 runnable threads
    Delay = 1, //!< extra stall ticks for a committing memory access
};

/**
 * A scheduling policy: answers the execution engine's decision-point
 * queries.  One instance drives exactly one run (policies carry
 * per-run RNG state); construct a fresh one per schedule.
 */
class SchedulePolicy
{
  public:
    virtual ~SchedulePolicy() = default;

    virtual const char *name() const = 0;

    /** Called once by the runner before the simulation starts. */
    virtual void begin(unsigned numThreads, unsigned numCores) {}

    /**
     * Choose which runnable thread core @p core issues next.
     * Only consulted when at least two threads are runnable;
     * @p candidates lists them in the core's round-robin probe order.
     * @return an index into @p candidates (out-of-range values are
     *         treated as 0 by the engine)
     */
    virtual std::size_t
    pickThread(CoreId core, const std::vector<ThreadId> &candidates)
    {
        return 0;
    }

    /**
     * Extra ticks to stall the memory access thread @p tid is issuing
     * at @p addr (@p sync = labelled synchronization access) beyond its
     * modeled completion time.  Consulted for every Load/Store/Rmw.
     */
    virtual Tick
    memDelay(ThreadId tid, Addr addr, bool sync)
    {
        return 0;
    }
};

/**
 * The identity policy: today's deterministic order, bit-identical to a
 * run with no policy attached (regression-tested).  Useful as schedule
 * index 0 of an exploration so the unperturbed interleaving is always
 * part of the sample, and to exercise the record/replay machinery on
 * the default schedule.
 */
class BaselinePolicy : public SchedulePolicy
{
  public:
    const char *name() const override { return "baseline"; }
};

} // namespace cord

#endif // CORD_SCHED_POLICY_H

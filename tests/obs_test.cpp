/**
 * @file
 * Observability-layer unit tests: JSON writer/parser round trips, the
 * event tracer (ordering, ring wrap, disabled-by-default guarantees),
 * the Chrome-trace export schema, and the upgraded StatRegistry
 * (gauges and log2 histograms).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <thread>

#include "cord/cord_detector.h"
#include "harness/runner.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/stats.h"

using namespace cord;

namespace
{

// ---------------------------------------------------------------- JSON

TEST(Json, WriterParserRoundTrip)
{
    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.field("name", "CORD \"observability\"\n");
    w.field("enabled", true);
    w.field("count", std::uint64_t(18446744073709551615ULL));
    w.field("delta", std::int64_t(-42));
    w.field("ratio", 0.25);
    w.key("none");
    w.null();
    w.key("list");
    w.beginArray();
    w.value(1);
    w.value("two");
    w.beginObject();
    w.field("nested", 3.5);
    w.endObject();
    w.endArray();
    w.endObject();

    std::string err;
    const auto v = JsonValue::parse(w.str(), &err);
    ASSERT_TRUE(v.has_value()) << err;
    ASSERT_TRUE(v->isObject());
    EXPECT_EQ(v->str("name"), "CORD \"observability\"\n");
    EXPECT_TRUE(v->find("enabled")->asBool());
    EXPECT_DOUBLE_EQ(v->num("count"), 18446744073709551615.0);
    EXPECT_DOUBLE_EQ(v->num("delta"), -42.0);
    EXPECT_DOUBLE_EQ(v->num("ratio"), 0.25);
    EXPECT_TRUE(v->find("none")->isNull());

    const JsonValue *list = v->find("list");
    ASSERT_NE(list, nullptr);
    ASSERT_TRUE(list->isArray());
    ASSERT_EQ(list->size(), 3u);
    EXPECT_DOUBLE_EQ(list->items()[0].asNumber(), 1.0);
    EXPECT_EQ(list->items()[1].asString(), "two");
    EXPECT_DOUBLE_EQ(list->items()[2].num("nested"), 3.5);
}

TEST(Json, ParseRejectsGarbage)
{
    EXPECT_FALSE(JsonValue::parse("").has_value());
    EXPECT_FALSE(JsonValue::parse("{").has_value());
    EXPECT_FALSE(JsonValue::parse("{\"a\":1,}").has_value());
    EXPECT_FALSE(JsonValue::parse("[1,2] trailing").has_value());
    EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
    EXPECT_FALSE(JsonValue::parse("nulll").has_value());
}

TEST(Json, ParseUnicodeEscapes)
{
    const auto v = JsonValue::parse("\"a\\u0041\\u00e9\"");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->asString(), "aA\xc3\xa9");
}

// -------------------------------------------------------------- tracer

TEST(Tracer, DisabledByDefaultAndAllocatesNothing)
{
    // No TracerScope anywhere: tracing must be off ...
    EXPECT_EQ(EventTracer::active(), nullptr);

    // ... so a full simulated run emits zero events into a tracer that
    // was constructed but never activated, and the tracer itself holds
    // no buffer memory until the first emit.
    EventTracer idle;
    RunSetup setup;
    setup.workload = "fft";
    setup.params.numThreads = 4;
    setup.params.scale = 1;
    setup.params.seed = 3;
    const RunOutcome out = runWorkload(setup);
    EXPECT_TRUE(out.completed);

    EXPECT_EQ(idle.total(), 0u);
    EXPECT_EQ(idle.bufferBytes(), 0u);
    EXPECT_EQ(EventTracer::active(), nullptr);
}

TEST(Tracer, ScopeActivatesAndRestores)
{
    EventTracer outer, inner;
    EXPECT_EQ(EventTracer::active(), nullptr);
    {
        TracerScope a(outer);
        EXPECT_EQ(EventTracer::active(), &outer);
        {
            TracerScope b(inner);
            EXPECT_EQ(EventTracer::active(), &inner);
        }
        EXPECT_EQ(EventTracer::active(), &outer);
    }
    EXPECT_EQ(EventTracer::active(), nullptr);
}

TEST(Tracer, TracerThreadIsolation)
{
    // EventTracer::active_ is thread_local: activation on one thread is
    // invisible to every other, so parallel campaign workers
    // (harness/exec.h) can each scope their own tracer without
    // cross-writing each other's ring buffers.
    EventTracer main;
    TracerScope scope(main);
    ASSERT_EQ(EventTracer::active(), &main);

    EventTracer a, b;
    auto emitVia = [](EventTracer &t, std::uint64_t base) {
        // A fresh thread starts with no active tracer, regardless of
        // what the spawning thread has activated.
        EXPECT_EQ(EventTracer::active(), nullptr);
        TracerScope s(t);
        EXPECT_EQ(EventTracer::active(), &t);
        for (std::uint64_t i = 0; i < 64; ++i)
            EventTracer::active()->emit(TraceEventKind::BusTransaction,
                                        /*tick=*/i, kInvalidThread,
                                        /*core=*/0, /*a=*/base + i);
    };
    std::thread ta([&] { emitVia(a, 1000); });
    std::thread tb([&] { emitVia(b, 2000); });
    ta.join();
    tb.join();

    // The spawning thread's activation survives untouched, and no
    // worker event leaked into the wrong buffer.
    EXPECT_EQ(EventTracer::active(), &main);
    EXPECT_EQ(main.total(), 0u);
    EXPECT_EQ(a.total(), 64u);
    EXPECT_EQ(b.total(), 64u);
    for (const TraceEvent &ev : a.snapshot())
        EXPECT_TRUE(ev.a >= 1000 && ev.a < 2000) << ev.a;
    for (const TraceEvent &ev : b.snapshot())
        EXPECT_GE(ev.a, 2000u) << ev.a;
}

TEST(Tracer, PreservesEmissionOrderAndWraps)
{
    EventTracer t(/*capacity=*/4);
    for (std::uint64_t i = 0; i < 6; ++i)
        t.emit(TraceEventKind::BusTransaction, /*tick=*/10 * i,
               kInvalidThread, /*core=*/0, /*a=*/i);

    EXPECT_EQ(t.total(), 6u);
    EXPECT_EQ(t.dropped(), 2u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.count(TraceEventKind::BusTransaction), 6u);
    EXPECT_EQ(t.bufferBytes(), 4 * sizeof(TraceEvent));

    // Oldest-first snapshot: events 2..5 survive, in emission order.
    const auto evs = t.snapshot();
    ASSERT_EQ(evs.size(), 4u);
    for (std::size_t i = 0; i < evs.size(); ++i) {
        EXPECT_EQ(evs[i].a, i + 2);
        EXPECT_EQ(evs[i].tick, 10 * (i + 2));
    }
}

TEST(Tracer, RealRunEmitsOrderedEvents)
{
    EventTracer t;
    CordConfig cc;
    cc.numCores = 4;
    cc.numThreads = 4;
    CordDetector cord(cc);

    RunSetup setup;
    setup.workload = "fft";
    setup.params.numThreads = 4;
    setup.params.scale = 1;
    setup.params.seed = 3;
    setup.detectors = {&cord};
    RunOutcome out;
    {
        TracerScope scope(t);
        out = runWorkload(setup);
    }
    ASSERT_TRUE(out.completed);
    ASSERT_GT(t.total(), 0u);

    // The memory system and the detector both show up.
    EXPECT_GT(t.count(TraceEventKind::BusTransaction), 0u);
    EXPECT_GT(t.count(TraceEventKind::HistoryLookup), 0u);
    EXPECT_GT(t.count(TraceEventKind::LogAppend), 0u);
    EXPECT_GT(t.count(TraceEventKind::SyncAcquire), 0u);
    EXPECT_GT(t.count(TraceEventKind::SyncRelease), 0u);

    // Within each track timestamps never regress.  (Global emission
    // order is not tick-sorted: bus grants are stamped with the future
    // grant tick at request time.)  Track identity mirrors the Chrome
    // export: thread-bound kinds key on tid, the rest on core/bus id.
    auto trackOf = [](const TraceEvent &ev) {
        switch (ev.kind) {
          case TraceEventKind::ClockUpdate:
          case TraceEventKind::RaceReport:
          case TraceEventKind::LogAppend:
          case TraceEventKind::SyncAcquire:
          case TraceEventKind::SyncRelease:
            return 1000 + static_cast<int>(ev.tid);
          case TraceEventKind::BusTransaction:
            return 2000 + static_cast<int>(ev.core);
          default:
            return static_cast<int>(ev.core);
        }
    };
    std::map<int, Tick> lastTick;
    for (const TraceEvent &ev : t.snapshot()) {
        const int track = trackOf(ev);
        const auto it = lastTick.find(track);
        if (it != lastTick.end()) {
            EXPECT_GE(ev.tick, it->second);
        }
        lastTick[track] = ev.tick;
    }
}

TEST(Tracer, ChromeTraceSchemaRoundTrip)
{
    EventTracer t(/*capacity=*/16);
    t.emit(TraceEventKind::ClockUpdate, 5, /*tid=*/1, /*core=*/2,
           /*a=*/7, /*b=*/3);
    t.emit(TraceEventKind::CacheFill, 9, kInvalidThread, /*core=*/0,
           /*a=*/0x40);
    t.emit(TraceEventKind::BusTransaction, 12, kInvalidThread,
           /*core=*/1, /*a=*/4, /*b=*/6);

    std::string err;
    const auto v = JsonValue::parse(renderChromeTrace(t), &err);
    ASSERT_TRUE(v.has_value()) << err;

    const JsonValue *section = v->find("cordTrace");
    ASSERT_NE(section, nullptr);
    EXPECT_EQ(section->str("schema"), "cord-trace-v1");
    EXPECT_DOUBLE_EQ(section->num("totalEvents"), 3.0);
    EXPECT_DOUBLE_EQ(section->num("droppedEvents"), 0.0);
    const JsonValue *counts = section->find("countsByKind");
    ASSERT_NE(counts, nullptr);
    EXPECT_EQ(counts->size(), kTraceEventKinds);
    EXPECT_DOUBLE_EQ(counts->num("clock_update"), 1.0);
    EXPECT_DOUBLE_EQ(counts->num("cache_fill"), 1.0);
    EXPECT_DOUBLE_EQ(counts->num("bus_transaction"), 1.0);

    const JsonValue *events = v->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    unsigned instants = 0, metadata = 0;
    for (const JsonValue &ev : events->items()) {
        ASSERT_TRUE(ev.isObject());
        const std::string ph = ev.str("ph");
        if (ph == "M") {
            ++metadata;
            continue;
        }
        ASSERT_EQ(ph, "i");
        ++instants;
        EXPECT_NE(ev.find("name"), nullptr);
        EXPECT_NE(ev.find("ts"), nullptr);
        EXPECT_NE(ev.find("pid"), nullptr);
        EXPECT_NE(ev.find("tid"), nullptr);
        EXPECT_NE(ev.find("args"), nullptr);
    }
    EXPECT_EQ(instants, 3u);
    // 3 process_name entries + one thread_name per used track.
    EXPECT_EQ(metadata, 3u + 3u);

    // The clock_update instant sits on the threads track (pid 1, tid 1)
    // and carries its core in args.
    for (const JsonValue &ev : events->items()) {
        if (ev.str("name") != "clock_update" || ev.str("ph") != "i")
            continue;
        EXPECT_DOUBLE_EQ(ev.num("pid"), 1.0);
        EXPECT_DOUBLE_EQ(ev.num("tid"), 1.0);
        EXPECT_DOUBLE_EQ(ev.num("ts"), 5.0);
        const JsonValue *args = ev.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_DOUBLE_EQ(args->num("clock"), 7.0);
        EXPECT_DOUBLE_EQ(args->num("prev"), 3.0);
        EXPECT_DOUBLE_EQ(args->num("core"), 2.0);
    }
}

// --------------------------------------------------- stats: histograms

TEST(Histogram, BucketBoundaries)
{
    // Bucket 0 holds exactly {0}; bucket k>=1 holds [2^(k-1), 2^k).
    EXPECT_EQ(HistogramStat::bucketOf(0), 0u);
    EXPECT_EQ(HistogramStat::bucketOf(1), 1u);
    EXPECT_EQ(HistogramStat::bucketOf(2), 2u);
    EXPECT_EQ(HistogramStat::bucketOf(3), 2u);
    EXPECT_EQ(HistogramStat::bucketOf(4), 3u);
    EXPECT_EQ(HistogramStat::bucketOf(7), 3u);
    EXPECT_EQ(HistogramStat::bucketOf(8), 4u);
    for (unsigned k = 1; k < 64; ++k) {
        const std::uint64_t lo = std::uint64_t(1) << (k - 1);
        EXPECT_EQ(HistogramStat::bucketOf(lo), k);
        EXPECT_EQ(HistogramStat::bucketOf(2 * lo - 1), k);
    }
    EXPECT_EQ(
        HistogramStat::bucketOf(std::numeric_limits<std::uint64_t>::max()),
        HistogramStat::kBuckets - 1);

    // bucketLow/bucketHigh invert bucketOf at the edges.
    EXPECT_EQ(HistogramStat::bucketLow(0), 0u);
    EXPECT_EQ(HistogramStat::bucketHigh(0), 0u);
    for (unsigned b = 1; b < HistogramStat::kBuckets; ++b) {
        EXPECT_EQ(HistogramStat::bucketOf(HistogramStat::bucketLow(b)), b);
        EXPECT_EQ(HistogramStat::bucketOf(HistogramStat::bucketHigh(b)),
                  b);
    }
    EXPECT_EQ(HistogramStat::bucketHigh(HistogramStat::kBuckets - 1),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, AccumulatesSummary)
{
    StatRegistry r;
    r.observe("h", 0);
    r.observe("h", 1);
    r.observe("h", 16);
    r.observe("h", 17);
    const HistogramStat h = r.histogram("h");
    EXPECT_EQ(h.count, 4u);
    EXPECT_EQ(h.sum, 34u);
    EXPECT_EQ(h.min, 0u);
    EXPECT_EQ(h.max, 17u);
    EXPECT_DOUBLE_EQ(h.mean(), 8.5);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 1u);
    EXPECT_EQ(h.buckets[5], 2u); // 16 and 17 share [16,32)
}

TEST(Gauge, MinMaxMean)
{
    StatRegistry r;
    EXPECT_EQ(r.gauge("g").count, 0u);
    r.sample("g", 2.0);
    r.sample("g", -1.0);
    r.sample("g", 5.0);
    const GaugeStat g = r.gauge("g");
    EXPECT_EQ(g.count, 3u);
    EXPECT_DOUBLE_EQ(g.min, -1.0);
    EXPECT_DOUBLE_EQ(g.max, 5.0);
    EXPECT_DOUBLE_EQ(g.mean(), 2.0);
}

TEST(StatRegistry, HandlesShareSlotsWithNamedApi)
{
    // Pre-registered handles (the hot-path API) and the string-keyed
    // calls must address the same slots, so exports and merges see one
    // value regardless of which API incremented it.
    StatRegistry r;
    Counter c = r.counter("cord.raceChecks");
    EXPECT_TRUE(static_cast<bool>(c));
    EXPECT_EQ(c.value(), 0u);
    // Binding materializes the counter at zero in exports.
    EXPECT_TRUE(r.has("cord.raceChecks"));

    c.inc();
    c.inc(4);
    EXPECT_EQ(r.get("cord.raceChecks"), 5u);
    r.inc("cord.raceChecks", 10);
    EXPECT_EQ(c.value(), 15u);
    c.set(3);
    EXPECT_EQ(r.get("cord.raceChecks"), 3u);

    Gauge g = r.gaugeHandle("occ");
    g.sample(2.0);
    g.sample(4.0);
    EXPECT_EQ(r.gauge("occ").count, 2u);
    EXPECT_DOUBLE_EQ(g.stat().mean(), 3.0);

    Histogram h = r.histogramHandle("jump");
    h.observe(0);
    h.observe(16);
    EXPECT_EQ(r.histogram("jump").count, 2u);
    EXPECT_EQ(h.stat().max, 16u);
}

TEST(StatRegistry, HandlesStayValidAcrossOtherInsertions)
{
    // std::map nodes never move: a handle bound early must survive
    // arbitrarily many later registrations (detectors bind all their
    // handles in the constructor, workloads register stats afterwards).
    StatRegistry r;
    Counter c = r.counter("a.first");
    for (int i = 0; i < 1000; ++i)
        r.inc("pad." + std::to_string(i));
    c.inc(7);
    EXPECT_EQ(r.get("a.first"), 7u);
}

TEST(StatRegistry, DefaultHandleIsUnbound)
{
    Counter c;
    Gauge g;
    Histogram h;
    EXPECT_FALSE(static_cast<bool>(c));
    EXPECT_FALSE(static_cast<bool>(g));
    EXPECT_FALSE(static_cast<bool>(h));
}

TEST(StatRegistry, MergeWithPrefix)
{
    StatRegistry a, b;
    a.inc("x", 2);
    b.inc("x", 3);
    b.sample("g", 1.0);
    b.observe("h", 4);

    StatRegistry hub;
    hub.merge("", a);
    hub.merge("comp", b);
    EXPECT_EQ(hub.get("x"), 2u);
    EXPECT_EQ(hub.get("comp.x"), 3u);
    EXPECT_EQ(hub.gauge("comp.g").count, 1u);
    EXPECT_EQ(hub.histogram("comp.h").count, 1u);

    // Same-name merges accumulate.
    hub.merge("comp", b);
    EXPECT_EQ(hub.get("comp.x"), 6u);
    EXPECT_EQ(hub.gauge("comp.g").count, 2u);
    EXPECT_EQ(hub.histogram("comp.h").count, 2u);
}

// ----------------------------------------------------------- MetricHub

TEST(MetricHub, JsonRoundTripThroughFlatten)
{
    StatRegistry r;
    r.set("bus.addr.waitCycles", 10);
    r.set("bus.addr", 99); // leaf + prefix: emitted as "value"
    r.inc("simple", 7);
    r.sample("occupancy", 3.0);
    r.sample("occupancy", 5.0);
    r.observe("jump", 8);

    MetricHub hub;
    hub.add("mem", r);

    JsonWriter w(/*pretty=*/true);
    hub.writeJson(w);
    std::string err;
    const auto v = JsonValue::parse(w.str(), &err);
    ASSERT_TRUE(v.has_value()) << err;

    const auto flat = flattenMetricsJson(*v);
    EXPECT_DOUBLE_EQ(flat.at("mem.bus.addr.waitCycles"), 10.0);
    EXPECT_DOUBLE_EQ(flat.at("mem.bus.addr"), 99.0);
    EXPECT_DOUBLE_EQ(flat.at("mem.simple"), 7.0);
    EXPECT_DOUBLE_EQ(flat.at("mem.occupancy.count"), 2.0);
    EXPECT_DOUBLE_EQ(flat.at("mem.occupancy.mean"), 4.0);
    EXPECT_DOUBLE_EQ(flat.at("mem.occupancy.min"), 3.0);
    EXPECT_DOUBLE_EQ(flat.at("mem.occupancy.max"), 5.0);
    EXPECT_DOUBLE_EQ(flat.at("mem.jump.count"), 1.0);
    EXPECT_DOUBLE_EQ(flat.at("mem.jump.mean"), 8.0);
}

} // namespace

# Empty compiler generated dependencies file for cord_core.
# This may be replaced when dependencies are built.

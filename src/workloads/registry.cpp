#include "workloads/workload.h"

#include "sim/logging.h"
#include "workloads/factories.h"

namespace cord
{

namespace
{

struct RegistryEntry
{
    const char *name;
    std::unique_ptr<Workload> (*factory)();
    const char *family;
};

// Table 1 order, then the server family (docs/WORKLOADS.md).
const RegistryEntry kRegistry[] = {
    {"barnes", makeBarnes, "splash"},
    {"cholesky", makeCholesky, "splash"},
    {"fft", makeFft, "splash"},
    {"fmm", makeFmm, "splash"},
    {"lu", makeLu, "splash"},
    {"ocean", makeOcean, "splash"},
    {"radiosity", makeRadiosity, "splash"},
    {"radix", makeRadix, "splash"},
    {"raytrace", makeRaytrace, "splash"},
    {"volrend", makeVolrend, "splash"},
    {"water-n2", makeWaterN2, "splash"},
    {"water-sp", makeWaterSp, "splash"},
    {"kvstore", makeKvStore, "server"},
    {"worksteal", makeWorkSteal, "server"},
    {"rcureg", makeRcuReg, "server"},
    {"eventloop", makeEventLoop, "server"},
};

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    for (const auto &e : kRegistry) {
        if (name == e.name)
            return e.factory();
    }
    cord_fatal("unknown workload '", name, "'");
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &e : kRegistry)
            v.emplace_back(e.name);
        return v;
    }();
    return names;
}

const std::vector<std::string> &
workloadNames(const std::string &family)
{
    static const std::vector<std::string> splash = [] {
        std::vector<std::string> v;
        for (const auto &e : kRegistry)
            if (std::string("splash") == e.family)
                v.emplace_back(e.name);
        return v;
    }();
    static const std::vector<std::string> server = [] {
        std::vector<std::string> v;
        for (const auto &e : kRegistry)
            if (std::string("server") == e.family)
                v.emplace_back(e.name);
        return v;
    }();
    if (family == "splash")
        return splash;
    if (family == "server")
        return server;
    cord_fatal("unknown workload family '", family, "'");
}

const std::string &
workloadFamily(const std::string &name)
{
    static const std::string splash = "splash";
    static const std::string server = "server";
    for (const auto &e : kRegistry) {
        if (name == e.name)
            return std::string("server") == e.family ? server : splash;
    }
    cord_fatal("unknown workload '", name, "'");
}

} // namespace cord

/**
 * @file
 * Run-manifest tests: schema round trip through the JSON parser,
 * byte-identical serialization for same-seed runs (with volatile
 * fields suppressed), and the shared table JSON emitter used by both
 * manifests and --json table output.
 */

#include <gtest/gtest.h>

#include "cord/cord_detector.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

using namespace cord;

namespace
{

RunManifest
manifestFromRun(std::uint64_t seed)
{
    CordConfig cc;
    cc.numCores = 4;
    cc.numThreads = 4;
    CordDetector cord(cc);

    RunSetup setup;
    setup.workload = "fft";
    setup.params.numThreads = 4;
    setup.params.scale = 1;
    setup.params.seed = seed;
    setup.detectors = {&cord};
    const RunOutcome out = runWorkload(setup);
    EXPECT_TRUE(out.completed);

    RunManifest m;
    m.tool = "manifest_test";
    m.workload = "fft";
    m.seed = seed;
    m.setConfig("threads", std::uint64_t(4));
    m.setConfig("scale", std::uint64_t(1));
    m.completed = out.completed;
    m.simTicks = out.ticks;
    m.metrics.add("", out.stats);
    m.metrics.add("detector.cord", cord.stats());
    return m;
}

TEST(Manifest, DeterministicForFixedSeed)
{
    const RunManifest a = manifestFromRun(11);
    const RunManifest b = manifestFromRun(11);
    // Volatile fields (timestamp, wallSeconds) suppressed: two runs of
    // the same seed must serialize byte-identically.
    EXPECT_EQ(a.renderJson(/*includeVolatile=*/false),
              b.renderJson(/*includeVolatile=*/false));

    // A different seed must actually change the document (guards
    // against the determinism being "everything is constant").
    const RunManifest c = manifestFromRun(12);
    EXPECT_NE(a.renderJson(false), c.renderJson(false));
}

TEST(Manifest, VolatileFieldsAreOptIn)
{
    RunManifest m;
    m.tool = "t";
    m.wallSeconds = 1.5;
    m.stampTime();
    EXPECT_NE(m.renderJson(true).find("timestamp"), std::string::npos);
    EXPECT_NE(m.renderJson(true).find("wallSeconds"),
              std::string::npos);
    EXPECT_EQ(m.renderJson(false).find("timestamp"), std::string::npos);
    EXPECT_EQ(m.renderJson(false).find("wallSeconds"),
              std::string::npos);
}

TEST(Manifest, JsonSchemaRoundTrip)
{
    RunManifest m = manifestFromRun(5);
    m.lintVerdict = "clean";
    m.tables.push_back({"demo", {"a", "b"}, {{"1", "2"}, {"3", "4"}}});

    std::string err;
    const auto v = JsonValue::parse(m.renderJson(), &err);
    ASSERT_TRUE(v.has_value()) << err;
    ASSERT_TRUE(v->isObject());

    EXPECT_EQ(v->str("schema"), kManifestSchema);
    EXPECT_EQ(v->str("tool"), "manifest_test");
    EXPECT_EQ(v->str("workload"), "fft");
    EXPECT_DOUBLE_EQ(v->num("seed"), 5.0);
    EXPECT_FALSE(v->str("git").empty());
    EXPECT_FALSE(v->str("build").empty());
    EXPECT_TRUE(v->find("completed")->asBool());
    EXPECT_GT(v->num("simTicks"), 0.0);
    EXPECT_EQ(v->str("lint"), "clean");

    const JsonValue *cfg = v->find("config");
    ASSERT_NE(cfg, nullptr);
    EXPECT_EQ(cfg->str("threads"), "4");

    const JsonValue *metrics = v->find("metrics");
    ASSERT_NE(metrics, nullptr);
    const auto flat = flattenMetricsJson(*metrics);
    EXPECT_GT(flat.at("sim.ticks"), 0.0);
    EXPECT_GT(flat.at("sim.committedAccesses"), 0.0);
    EXPECT_GT(flat.at("mem.bus.addr.transactions"), 0.0);
    EXPECT_GT(flat.at("detector.cord.cord.raceChecks"), 0.0);

    const JsonValue *tables = v->find("tables");
    ASSERT_NE(tables, nullptr);
    ASSERT_EQ(tables->size(), 1u);
    const JsonValue &t = tables->items()[0];
    EXPECT_EQ(t.str("title"), "demo");
    ASSERT_EQ(t.find("headers")->size(), 2u);
    ASSERT_EQ(t.find("rows")->size(), 2u);
    EXPECT_EQ(t.find("rows")->items()[1].items()[0].asString(), "3");
}

TEST(Table, JsonOutputMatchesContents)
{
    TextTable t({"App", "N"});
    t.addRow({"fft", "1"});
    t.addRow({"lu", "2"});

    std::string err;
    const auto v = JsonValue::parse(t.renderJson("title x"), &err);
    ASSERT_TRUE(v.has_value()) << err;
    EXPECT_EQ(v->str("title"), "title x");
    ASSERT_EQ(v->find("headers")->size(), 2u);
    EXPECT_EQ(v->find("headers")->items()[0].asString(), "App");
    ASSERT_EQ(v->find("rows")->size(), 2u);
    EXPECT_EQ(v->find("rows")->items()[0].items()[0].asString(), "fft");
    EXPECT_EQ(v->find("rows")->items()[1].items()[1].asString(), "2");

    EXPECT_EQ(t.headers().size(), 2u);
    EXPECT_EQ(t.rows().size(), 2u);
}

} // namespace

file(REMOVE_RECURSE
  "../bench/bench_orderlog"
  "../bench/bench_orderlog.pdb"
  "CMakeFiles/bench_orderlog.dir/bench_orderlog.cpp.o"
  "CMakeFiles/bench_orderlog.dir/bench_orderlog.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orderlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
